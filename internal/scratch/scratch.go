// Package scratch provides length-bucketed free lists for the hot-path
// buffers the engine and transports churn through: []float64 vector
// scratch and []byte wire-encode buffers. It wraps sync.Pool so buffers
// are reclaimed under memory pressure, while steady-state iterations hit
// the pool and perform no heap allocation.
//
// Buckets are powers of two: a request for n capacity is served from the
// bucket holding the next power of two ≥ n, so a returned buffer is
// reusable by any request of similar size instead of only exact matches.
// Slice headers round-trip through a secondary box pool — Put must not
// allocate, or the pool would defeat its own purpose.
//
// Ownership contract: a buffer obtained from Get is exclusively the
// caller's until Put; after Put it must not be touched. Put accepts
// buffers of any origin (stray capacities land in the bucket of the
// largest power of two ≤ cap), so pools never grow stale entries that can
// serve no request.
package scratch

import (
	"math/bits"
	"sync"
)

// maxBucket caps pooling at 1<<maxBucket elements; larger buffers are
// allocated directly and dropped on Put (they are rare and better left to
// the GC than pinned in a pool).
const maxBucket = 26

// bucketFor returns the bucket index whose capacity 1<<idx is the
// smallest power of two ≥ n.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Floats pools []float64 scratch by capacity bucket. The zero value is
// ready to use.
type Floats struct {
	buckets [maxBucket + 1]sync.Pool
	boxes   sync.Pool // *[]float64 headers, recycled so Put never allocates
}

// Get returns a zeroed slice of length n with capacity ≥ n.
func (p *Floats) Get(n int) []float64 {
	if n < 0 {
		panic("scratch: negative length")
	}
	b := bucketFor(n)
	if b > maxBucket {
		return make([]float64, n)
	}
	if v, ok := p.buckets[b].Get().(*[]float64); ok {
		s := (*v)[:n]
		*v = nil
		p.boxes.Put(v)
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float64, n, 1<<b)
}

// Put returns a buffer to the pool. nil and zero-capacity slices are
// ignored.
func (p *Floats) Put(s []float64) {
	c := cap(s)
	if c == 0 {
		return
	}
	b := bits.Len(uint(c)) - 1 // largest power of two ≤ cap
	if b > maxBucket {
		return
	}
	box, ok := p.boxes.Get().(*[]float64)
	if !ok {
		box = new([]float64)
	}
	*box = s[: 0 : 1<<b] // clamp so Get's reslice never exceeds the bucket size
	p.buckets[b].Put(box)
}

// Bytes pools []byte buffers by capacity bucket (wire encode scratch).
// The zero value is ready to use.
type Bytes struct {
	buckets [maxBucket + 1]sync.Pool
	boxes   sync.Pool // *[]byte headers, recycled so Put never allocates
}

// Get returns a slice of length 0 with capacity ≥ n, ready for append.
func (p *Bytes) Get(n int) []byte {
	if n < 0 {
		panic("scratch: negative length")
	}
	b := bucketFor(n)
	if b > maxBucket {
		return make([]byte, 0, n)
	}
	if v, ok := p.buckets[b].Get().(*[]byte); ok {
		s := (*v)[:0]
		*v = nil
		p.boxes.Put(v)
		return s
	}
	return make([]byte, 0, 1<<b)
}

// Put returns a buffer to the pool. nil and zero-capacity slices are
// ignored.
func (p *Bytes) Put(s []byte) {
	c := cap(s)
	if c == 0 {
		return
	}
	b := bits.Len(uint(c)) - 1
	if b > maxBucket {
		return
	}
	box, ok := p.boxes.Get().(*[]byte)
	if !ok {
		box = new([]byte)
	}
	*box = s[: 0 : 1<<b]
	p.buckets[b].Put(box)
}
