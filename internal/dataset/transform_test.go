package dataset

import (
	"math"
	"strings"
	"testing"

	"psrahgadmm/internal/vec"
)

func transformFixture(t *testing.T) *Dataset {
	t.Helper()
	d, err := ReadLIBSVM(strings.NewReader(
		"+1 1:3 2:4\n-1 2:2\n+1 3:10\n-1 1:1 3:2\n+1 2:6\n-1 1:5\n"), 3, "fx")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNormalizeRowsL2(t *testing.T) {
	d := transformFixture(t)
	d.NormalizeRowsL2()
	for r := 0; r < d.Rows(); r++ {
		_, vals := d.X.Row(r)
		var sq float64
		for _, v := range vals {
			sq += v * v
		}
		if math.Abs(sq-1) > 1e-12 {
			t.Fatalf("row %d norm² = %v", r, sq)
		}
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	// Row 0 was (3,4): must become (0.6, 0.8).
	_, vals := d.X.Row(0)
	if math.Abs(vals[0]-0.6) > 1e-12 || math.Abs(vals[1]-0.8) > 1e-12 {
		t.Fatalf("row 0 = %v", vals)
	}
}

func TestNormalizeRowsL2EmptyRow(t *testing.T) {
	d, err := ReadLIBSVM(strings.NewReader("+1 1:2\n-1\n"), 2, "e")
	if err != nil {
		t.Fatal(err)
	}
	d.NormalizeRowsL2() // must not panic on the empty row
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsColumnScale(t *testing.T) {
	d := transformFixture(t)
	scales := d.MaxAbsColumnScale()
	// Column maxima: col0 max |5|, col1 max |6|, col2 max |10|.
	want := []float64{5, 6, 10}
	if !vec.WithinTol(scales, want, 1e-12) {
		t.Fatalf("scales = %v, want %v", scales, want)
	}
	// After scaling every |value| ≤ 1 and each column's max is exactly 1.
	maxima := make([]float64, d.Dim())
	for k, c := range d.X.ColIdx {
		if a := math.Abs(d.X.Val[k]); a > maxima[c] {
			maxima[c] = a
		}
	}
	for c, mx := range maxima {
		if math.Abs(mx-1) > 1e-12 {
			t.Fatalf("column %d post-scale max = %v", c, mx)
		}
	}
}

func TestApplyColumnScaleToTestSplit(t *testing.T) {
	train := transformFixture(t)
	test := transformFixture(t)
	scales := train.MaxAbsColumnScale()
	test.ApplyColumnScale(scales)
	// Both splits must now be identical (they started identical).
	for r := 0; r < train.Rows(); r++ {
		_, a := train.X.Row(r)
		_, b := test.X.Row(r)
		if !vec.WithinTol(a, b, 1e-12) {
			t.Fatalf("row %d differs after shared scaling", r)
		}
	}
}

func TestShuffleAndReorder(t *testing.T) {
	d := transformFixture(t)
	orig := make([]float64, d.Rows())
	copy(orig, d.Labels)
	nnz := d.NNZ()
	d.Shuffle(3)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if d.NNZ() != nnz || d.Rows() != len(orig) {
		t.Fatal("shuffle lost data")
	}
	// Same multiset of labels.
	var sumA, sumB float64
	for i := range orig {
		sumA += orig[i]
		sumB += d.Labels[i]
	}
	if sumA != sumB {
		t.Fatal("labels changed")
	}
	// Deterministic: same seed, same order.
	e := transformFixture(t)
	e.Shuffle(3)
	if !vec.Equal(d.Labels, e.Labels) {
		t.Fatal("shuffle not deterministic")
	}
}

func TestReorderRejectsBadPermutation(t *testing.T) {
	d := transformFixture(t)
	for _, bad := range [][]int{
		{0, 0, 2, 3, 4, 5},
		{0, 1, 2},
		{0, 1, 2, 3, 4, 9},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("permutation %v accepted", bad)
				}
			}()
			d.Reorder(bad)
		}()
	}
}

func TestStratifiedSplit(t *testing.T) {
	train, _, err := Generate(SynthConfig{
		Name: "ss", Dim: 100, TrainRows: 200, TestRows: 1, RowNNZ: 5,
		ZipfS: 1.3, SignalNNZ: 20, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, te, err := train.StratifiedSplit(0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rows()+te.Rows() != train.Rows() {
		t.Fatalf("split lost rows: %d + %d != %d", tr.Rows(), te.Rows(), train.Rows())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if err := te.Check(); err != nil {
		t.Fatal(err)
	}
	// Label ratios preserved within a couple of samples.
	frac := func(d *Dataset) float64 { return d.Summary().PosFrac }
	if math.Abs(frac(tr)-frac(te)) > 0.05 {
		t.Fatalf("stratification broken: train %v vs test %v", frac(tr), frac(te))
	}
	// Invalid fractions rejected.
	if _, _, err := train.StratifiedSplit(0, 1); err == nil {
		t.Fatal("testFrac 0 accepted")
	}
	if _, _, err := train.StratifiedSplit(1, 1); err == nil {
		t.Fatal("testFrac 1 accepted")
	}
}
