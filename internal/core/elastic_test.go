package core

import (
	"math"
	"testing"
	"time"

	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

// TestElasticSurvivesScheduledKills is the headline chaos test: 3 of 8
// workers die mid-run — a non-leader, a Leader (forcing re-election onto
// the node's surviving rank), and finally that node's last rank (removing
// the node from the tree entirely) — and the elastic run must complete
// every iteration and converge to the SURVIVORS' optimum: the z-update's
// live-count scaling keeps degraded consensus exact, so the shrunken
// cluster solves exactly the problem posed by the surviving shards.
func TestElasticSurvivesScheduledKills(t *testing.T) {
	train, _ := testData(t, 240)
	const world = 8
	cfg := baseConfig(PSRAHGADMM, 4, 2) // node n owns ranks {2n, 2n+1}
	cfg.MaxIter = 200
	cfg.EvalEvery = 10
	cfg.AdaptiveRho = true
	cfg.Elastic = true
	cfg.Faults = &transport.FaultPlan{
		Seed: 5,
		KillAtIteration: map[int]int{
			3: 3, // non-leader of node 1
			2: 5, // Leader of node 1 → node 1 fully dead
			4: 7, // Leader of node 2 → rank 5 re-elected
		},
	}

	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		t.Fatalf("elastic run failed: %v", err)
	}
	if len(res.History) != cfg.MaxIter {
		t.Fatalf("completed %d of %d iterations", len(res.History), cfg.MaxIter)
	}

	// The membership trajectory must be visible in the history: each kill
	// lands at its iteration's start, so that iteration already reports
	// the shrunken world and the bumped epoch.
	wantLive := func(iter, live, epoch int) {
		t.Helper()
		s := res.History[iter]
		if s.LiveWorkers != live || s.Epoch != epoch {
			t.Fatalf("iter %d: live=%d epoch=%d, want live=%d epoch=%d",
				iter, s.LiveWorkers, s.Epoch, live, epoch)
		}
	}
	wantLive(2, 8, 0)
	wantLive(3, 7, 1)
	wantLive(5, 6, 2)
	wantLive(7, 5, 3)
	if last := res.History[len(res.History)-1]; last.PeerDowns != 3 {
		t.Fatalf("final PeerDowns %d, want 3", last.PeerDowns)
	}
	if !res.Degraded || res.LiveWorkers != 5 || res.Epoch != 3 {
		t.Fatalf("final membership: %+v", res)
	}

	// Convergence target: the reference optimum of the surviving shards.
	shards := train.Shard(world)
	surv, err := dataset.Concat("survivors", shards[0], shards[1], shards[5], shards[6], shards[7])
	if err != nil {
		t.Fatal(err)
	}
	fstar, _, err := ReferenceOptimum(surv, cfg.Rho, cfg.Lambda, 300)
	if err != nil {
		t.Fatal(err)
	}
	f := res.FinalObjective()
	rel := math.Abs(f-fstar) / math.Abs(fstar)
	if rel > 1e-3 {
		t.Fatalf("degraded run missed the survivors' optimum: f=%v f*=%v rel=%v", f, fstar, rel)
	}
}

// TestElasticDeterministic: scheduled kills land at iteration boundaries
// before any collective can race against discovering them, so elastic
// chaos runs with equal inputs produce bit-identical histories — the
// engine's determinism contract extends to degraded mode. Repetitions
// matter here: the fault fabric's one-shot any-source death report races
// against queued deliveries, so a round retry fires on some executions
// and not others, and Bytes accounting must be retry-invariant (launch
// fan-in bytes ride on the pending batch; see chargeLaunchBytes).
func TestElasticDeterministic(t *testing.T) {
	train, test := testData(t, 160)
	run := func() *Result {
		cfg := baseConfig(PSRAHGADMM, 4, 2)
		cfg.MaxIter = 12
		cfg.GroupThreshold = 2
		cfg.Elastic = true
		cfg.Faults = &transport.FaultPlan{
			Seed:            7,
			KillAtIteration: map[int]int{3: 3, 2: 6},
		}
		res, err := Run(cfg, train, RunOptions{Test: test})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	for rep := 0; rep < 8; rep++ {
		b := run()
		for i := range a.History {
			if !iterStatEqual(a.History[i], b.History[i]) {
				t.Fatalf("rep %d iter %d differs:\n%+v\n%+v", rep, i, a.History[i], b.History[i])
			}
		}
		if !vec.Equal(a.Z, b.Z) {
			t.Fatalf("rep %d: final iterates differ", rep)
		}
	}
}

// TestElasticSurvivesMidCollectiveKill covers the hard path: the Leader of
// node 1 dies partway through a collective (send-count triggered, not at
// a boundary), so live members are blocked mid-protocol when the death
// surfaces. The latch must unwind them without closing the fabric, the
// membership layer absorbs the death, the node re-elects its surviving
// rank, and the run completes degraded. Timing of the kill is racy by
// construction, so the assertions are structural, not bit-exact.
func TestElasticSurvivesMidCollectiveKill(t *testing.T) {
	train, _ := testData(t, 120)
	for _, alg := range []Algorithm{PSRAHGADMM, PSRAADMM, GRADMM} {
		t.Run(string(alg), func(t *testing.T) {
			cfg := baseConfig(alg, 3, 2)
			cfg.MaxIter = 40
			cfg.Elastic = true
			cfg.Faults = &transport.FaultPlan{
				Seed:           9,
				KillAfterSends: map[int]int{2: 7}, // Leader of node 1
			}
			type outcome struct {
				res *Result
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, err := Run(cfg, train, RunOptions{})
				done <- outcome{res, err}
			}()
			select {
			case o := <-done:
				if o.err != nil {
					t.Fatalf("elastic run did not survive the kill: %v", o.err)
				}
				if len(o.res.History) != cfg.MaxIter {
					t.Fatalf("completed %d of %d iterations", len(o.res.History), cfg.MaxIter)
				}
				if !o.res.Degraded || o.res.LiveWorkers != 5 {
					t.Fatalf("membership after kill: live=%d degraded=%v", o.res.LiveWorkers, o.res.Degraded)
				}
				if o.res.FinalObjective() >= o.res.History[0].Objective {
					t.Fatalf("no progress after the kill: %v → %v",
						o.res.History[0].Objective, o.res.FinalObjective())
				}
			case <-time.After(120 * time.Second):
				t.Fatal("elastic run hung after mid-collective kill")
			}
		})
	}
}

// TestElasticHappyPathUnchanged: with nobody dying, the elastic machinery
// must be an exact identity — same history, bit for bit, as the
// non-elastic run. The live filters return the full world unchanged, so
// every float is summed in the pre-elastic order.
func TestElasticHappyPathUnchanged(t *testing.T) {
	train, test := testData(t, 160)
	run := func(elastic bool) *Result {
		cfg := baseConfig(PSRAHGADMM, 4, 2)
		cfg.MaxIter = 10
		cfg.GroupThreshold = 2
		cfg.Elastic = elastic
		res, err := Run(cfg, train, RunOptions{Test: test})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, elastic := run(false), run(true)
	for i := range plain.History {
		if !iterStatEqual(plain.History[i], elastic.History[i]) {
			t.Fatalf("iter %d differs:\n%+v\n%+v", i, plain.History[i], elastic.History[i])
		}
	}
	if !vec.Equal(plain.Z, elastic.Z) {
		t.Fatal("final iterates differ")
	}
}

// TestFailStopPartialResultComplete pins the fail-stop error path's
// contract: the partial Result returned alongside the error must be fully
// stamped — Z, SystemTime, and the membership view — not just the history
// (SystemTime used to be left zero on this path).
func TestFailStopPartialResultComplete(t *testing.T) {
	train, _ := testData(t, 120)
	cfg := baseConfig(PSRAHGADMM, 3, 2)
	cfg.MaxIter = 50
	cfg.Faults = &transport.FaultPlan{Seed: 9, KillAfterSends: map[int]int{0: 7}}
	res, err := Run(cfg, train, RunOptions{})
	if err == nil {
		t.Fatal("fail-stop run succeeded despite a killed worker")
	}
	if res == nil {
		t.Fatal("no partial result")
	}
	if res.Z == nil {
		t.Fatal("partial result missing Z")
	}
	if res.SystemTime != res.TotalCalTime+res.TotalCommTime {
		t.Fatalf("partial result SystemTime %v != cal %v + comm %v",
			res.SystemTime, res.TotalCalTime, res.TotalCommTime)
	}
	if len(res.History) > 0 && res.SystemTime <= 0 {
		t.Fatal("partial result SystemTime not accumulated")
	}
}
