package core

import (
	"psrahgadmm/internal/sparse"
)

// ringStrategy is the hierarchical Ring-Allreduce: workers reduce their w
// over the node bus to their Leader, all Leaders run one Ring-Allreduce,
// and the (much sparser) z fans back out. The codec decides the wire
// format — GR-ADMM is this ring with the exact sparse exchange under BSP;
// ADMMLib is the same ring with the dense single-precision exchange under
// node-granular SSP (the full parameter vector circulates regardless of
// sparsity, which is why its communication volume is flat in cluster size
// and why PSRA's sparse exchange undercuts it).
type ringStrategy struct {
	env    *strategyEnv
	clocks []sspClock // per node
	// Dense-codec state: cached and in-flight per-node dense sums.
	wCurD [][]float64
	pendD [][]float64
	// Sparse-codec state: cached and in-flight per-node sparse sums.
	wCurS []*sparse.Vector
	pendS []*sparse.Vector
	// lastRingEnd serializes consecutive rings through the Leaders' NICs.
	lastRingEnd float64
	// Reusable round scratch: barrier bookkeeping plus the ring's result
	// sinks (aggS for the sparse exchange, bigWBuf for the dense one).
	finishes []float64
	fresh    []int
	aggS     *sparse.Vector
	bigWBuf  []float64
}

func newRingStrategy(env *strategyEnv, cfg Config) *ringStrategy {
	nodes := cfg.Topo.Nodes
	st := &ringStrategy{env: env, clocks: make([]sspClock, nodes)}
	if env.codec.DenseExchange() {
		st.wCurD = make([][]float64, nodes)
		st.pendD = make([][]float64, nodes)
		for n := range st.wCurD {
			st.wCurD[n] = make([]float64, env.dim)
		}
		st.bigWBuf = make([]float64, env.dim)
	} else {
		st.wCurS = make([]*sparse.Vector, nodes)
		st.pendS = make([]*sparse.Vector, nodes)
		for n := range st.wCurS {
			st.wCurS[n] = sparse.NewVector(env.dim, 0)
		}
		st.aggS = new(sparse.Vector)
	}
	return st
}

// reconcile absorbs membership changes: dead members leave every
// in-flight batch, whose partial sum is rebuilt from the survivors'
// retained contributions (re-encoded for the dense exchange). Cached
// stale contributions follow the bounded-staleness contract described on
// treeStrategy.reconcile.
func (st *ringStrategy) reconcile() {
	env := st.env
	dense := env.codec.DenseExchange()
	for n := range st.clocks {
		p := st.clocks[n].pending
		if p == nil || !env.prunePending(p) {
			continue
		}
		if len(p.ranks) == 0 {
			st.clocks[n] = sspClock{}
			if dense {
				st.pendD[n] = nil
			} else {
				st.pendS[n] = nil
			}
			continue
		}
		if dense {
			sum := make([]float64, env.dim)
			for _, v := range p.vs {
				v.AddIntoDense(sum, 1)
			}
			env.codec.EncodeDense(sum)
			st.pendD[n] = sum
		} else {
			st.pendS[n] = sumSparse(env.dim, p.vs)
		}
	}
}

func (st *ringStrategy) Round(cfg Config, iter int) (iterTiming, error) {
	env := st.env
	topo := cfg.Topo
	wpn := topo.WorkersPerNode
	dense := env.codec.DenseExchange()
	var timing iterTiming

	if env.reconciles() {
		st.reconcile()
	}
	liveNodes, ranksOf := env.liveNodes(topo)

	// Launch compute on every idle live node.
	for _, n := range liveNodes {
		if st.clocks[n].pending != nil {
			continue
		}
		if dense {
			st.pendD[n] = st.launchNodeDense(cfg, n, iter)
		} else {
			c := launchNodeSparse(env, cfg, n, iter)
			st.pendS[n] = c.sum
			st.clocks[n].pending = c.pending
		}
	}
	chargeLaunchBytes(st.clocks, iter, &timing)

	cutoff := sspCutoff(st.clocks, env.sync.Quorum(len(liveNodes), wpn), env.sync.Delay(), &st.finishes)
	st.fresh = admitted(st.clocks, cutoff, st.fresh)
	freshNodes := st.fresh
	for _, n := range freshNodes {
		if dense {
			st.wCurD[n] = st.pendD[n]
		} else {
			st.wCurS[n] = st.pendS[n]
		}
	}

	// The ring runs among every live node's Leader (the node's first
	// surviving rank) — stale Leaders serve their cached contribution.
	leaders := make([]int, 0, len(liveNodes))
	inputsD := make([][]float64, 0, len(liveNodes))
	inputsS := make([]*sparse.Vector, 0, len(liveNodes))
	for _, n := range liveNodes {
		leaders = append(leaders, ranksOf[n][0])
		if dense {
			inputsD = append(inputsD, st.wCurD[n])
		} else {
			inputsS = append(inputsS, st.wCurS[n])
		}
	}
	ringStart := maxf(cutoff, st.lastRingEnd)
	var commT float64
	var bigW []float64
	var agg *sparse.Vector
	if len(liveNodes) == 1 {
		if dense {
			// Copy: EncodeDense below mutates bigW, and the cached
			// contribution must stay intact for later stale rounds.
			bigW = st.bigWBuf
			copy(bigW, inputsD[0])
		} else {
			agg = inputsS[0]
		}
	} else if dense {
		tr, err := groupAllreduceDense(env, leaders, inputsD, st.bigWBuf)
		if err != nil {
			return timing, err
		}
		bigW = st.bigWBuf
		scaled := env.codec.WireTrace(tr)
		commT = cfg.Cost.TraceTime(topo, scaled)
		timing.bytes += traceBytes(scaled)
	} else {
		tr, err := groupAllreduce(env, leaders, commRingSparse, inputsS, st.aggS)
		if err != nil {
			return timing, err
		}
		agg = st.aggS
		tr = env.codec.WireTrace(tr)
		commT = cfg.Cost.TraceTime(topo, tr)
		timing.bytes += traceBytes(tr)
	}
	ringEnd := ringStart + commT
	st.lastRingEnd = ringEnd

	// Leaders hold W after the ring; they apply the z-update — averaging
	// over the surviving workers — and fan the thresholded z to their
	// fresh workers.
	contributors := env.members.LiveCount()
	var zDense []float64
	var zSparse *sparse.Vector
	if dense {
		env.codec.EncodeDense(bigW)
		zDense = make([]float64, env.dim)
		solverZUpdate(zDense, bigW, cfg.Lambda, cfg.Rho, contributors)
		env.codec.EncodeDense(zDense)
	} else {
		zSparse = zFromW(agg, cfg.Lambda, cfg.Rho, contributors)
		zDense = zSparse.ToDense()
	}

	calSum, commSum := 0.0, 0.0
	applied := 0
	for _, n := range freshNodes {
		p := st.clocks[n].pending
		var bc traceAlias
		if dense {
			bc = denseFanTrace(p.ranks, p.ranks[0], env.codec.ZMsgBytes(countNonzero(zDense)), false)
		} else {
			bc = intraBcastTrace(p.ranks, p.ranks[0], zSparse.NNZ())
		}
		timing.bytes += traceBytes(bc)
		end := ringEnd + cfg.Cost.TraceTime(topo, bc)
		for _, c := range p.cals {
			calSum += c
		}
		applyNodeZ(env, cfg, p, zDense, zSparse, end, &commSum, &applied)
		st.clocks[n].pending = nil
		st.clocks[n].staleness = 0
		if dense {
			st.pendD[n] = nil
		} else {
			st.pendS[n] = nil
		}
	}
	bumpStale(st.clocks)
	if applied > 0 {
		timing.cal = calSum / float64(applied)
		timing.comm = commSum / float64(applied)
	}
	return timing, nil
}

// launchNodeDense is the dense-codec counterpart of launchNodeSparse: the
// node's w contributions are summed densely, rounded by the codec, and
// fanned to the Leader as fixed-size dense messages over the bus.
func (st *ringStrategy) launchNodeDense(cfg Config, n, iter int) []float64 {
	env := st.env
	topo := cfg.Topo
	ranks := env.liveWorkersOf(topo, n)
	sub := make([]*worker, len(ranks))
	for i, r := range ranks {
		sub[i] = env.ws[r]
	}
	// The pending batch retains cals past this round; copy out of the
	// pool's scratch.
	cals := append([]float64(nil), env.pool.run(cfg, sub, iter)...)
	starts := make([]float64, len(ranks))
	vs := make([]*sparse.Vector, len(ranks))
	sum := make([]float64, env.dim)
	ready := 0.0
	for i, w := range sub {
		starts[i] = w.clock
		ready = maxf(ready, w.clock+cals[i])
		// Retain the raw sparse contribution: reconcile re-sums and
		// re-encodes from these when a member dies in flight.
		vs[i] = w.wSparse(cfg.Rho)
		vs[i].AddIntoDense(sum, 1)
	}
	env.codec.EncodeDense(sum)
	tr := denseFanTrace(ranks, ranks[0], env.codec.DenseMsgBytes(env.dim), true)
	st.clocks[n].pending = &pendingCompute{
		finish:      ready + cfg.Cost.TraceTime(topo, tr),
		ranks:       ranks,
		starts:      starts,
		cals:        cals,
		vs:          vs,
		launchIter:  iter,
		launchBytes: traceBytes(tr),
	}
	return sum
}
