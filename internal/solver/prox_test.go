package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"psrahgadmm/internal/vec"
)

// zObjL1 is the z-subproblem value λ‖z‖₁ + (nρ/2)‖z‖² − zᵀW, used to verify
// the closed-form update is the actual minimizer.
func zObjL1(z, w []float64, lambda, rho float64, n int) float64 {
	return lambda*vec.Nrm1(z) + 0.5*rho*float64(n)*vec.Nrm2Sq(z) - vec.Dot(z, w)
}

func TestZUpdateL1IsMinimizer(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	for trial := 0; trial < 30; trial++ {
		dim := r.Intn(10) + 1
		n := r.Intn(8) + 1
		lambda := r.Float64() * 2
		rho := r.Float64()*2 + 0.1
		w := make([]float64, dim)
		for i := range w {
			w[i] = r.NormFloat64() * 3
		}
		z := make([]float64, dim)
		ZUpdateL1(z, w, lambda, rho, n)
		f0 := zObjL1(z, w, lambda, rho, n)
		// Any perturbation must not decrease the objective.
		for k := 0; k < 20; k++ {
			zp := vec.Clone(z)
			zp[r.Intn(dim)] += (r.Float64() - 0.5) * 0.01
			if zObjL1(zp, w, lambda, rho, n) < f0-1e-12 {
				t.Fatalf("trial %d: perturbed objective lower than closed form", trial)
			}
		}
	}
}

func TestZUpdateL1Aliasing(t *testing.T) {
	w := []float64{5, -5, 0.5}
	ZUpdateL1(w, w, 1, 1, 2)
	want := []float64{2, -2, 0}
	if !vec.Equal(w, want) {
		t.Fatalf("aliased ZUpdateL1 = %v, want %v", w, want)
	}
}

func TestZUpdateL1ZeroLambdaIsAverageScaled(t *testing.T) {
	// λ=0 ⇒ z = W/(nρ), the plain consensus average of w-contributions.
	w := []float64{2, -4}
	z := make([]float64, 2)
	ZUpdateL1(z, w, 0, 2, 2)
	if !vec.Equal(z, []float64{0.5, -1}) {
		t.Fatalf("z = %v", z)
	}
}

func TestZUpdateL2IsMinimizer(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		dim := r.Intn(8) + 1
		n := r.Intn(5) + 1
		lambda := r.Float64() * 2
		rho := r.Float64() + 0.1
		w := make([]float64, dim)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		z := make([]float64, dim)
		ZUpdateL2(z, w, lambda, rho, n)
		// Gradient of (λ+nρ)/2·‖z‖² − zᵀW is (λ+nρ)z − W = 0.
		for i := range z {
			g := (lambda+rho*float64(n))*z[i] - w[i]
			if math.Abs(g) > 1e-12 {
				t.Fatalf("L2 z-update gradient[%d] = %v", i, g)
			}
		}
	}
}

func TestDualUpdate(t *testing.T) {
	y := []float64{1, 2}
	x := []float64{3, 4}
	z := []float64{1, 1}
	DualUpdate(y, x, z, 0.5)
	if !vec.Equal(y, []float64{2, 3.5}) {
		t.Fatalf("DualUpdate = %v", y)
	}
}

func TestWLocal(t *testing.T) {
	y := []float64{1, -1}
	x := []float64{2, 3}
	w := make([]float64, 2)
	WLocal(w, y, x, 2)
	if !vec.Equal(w, []float64{5, 5}) {
		t.Fatalf("WLocal = %v", w)
	}
}

func TestZUpdatePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	ZUpdateL1(make([]float64, 1), make([]float64, 1), 1, 1, 0)
}

// Property: ADMM fixed point — if x = z and w = y + ρx with y = −∂f… we
// verify the weaker, exact property that the primal residual after a dual
// update shrinks the Lagrangian disagreement: y' − y = ρ(x−z) exactly.
func TestDualUpdateExactResidualProperty(t *testing.T) {
	f := func(seed int64, dimRaw uint8) bool {
		dim := int(dimRaw%16) + 1
		r := rand.New(rand.NewSource(seed))
		y := make([]float64, dim)
		x := make([]float64, dim)
		z := make([]float64, dim)
		for i := 0; i < dim; i++ {
			y[i], x[i], z[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		}
		rho := r.Float64() + 0.1
		y0 := vec.Clone(y)
		DualUpdate(y, x, z, rho)
		for i := range y {
			if math.Abs((y[i]-y0[i])-rho*(x[i]-z[i])) > 1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
