package wlg

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// TestGGRejectsMalformedRequest verifies the Group Generator fails loudly
// on a corrupt report rather than mis-grouping.
func TestGGRejectsMalformedRequest(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 1}
	f := transport.NewChanFabric(WorldSize(topo))
	defer f.Close()
	cfg := Config{Topo: topo, MaxIter: 1}

	done := make(chan error, 1)
	go func() { done <- RunGG(f.Endpoint(GGRank(topo)), cfg) }()

	// A request with the wrong payload arity.
	if err := f.Endpoint(0).Send(GGRank(topo), wire.Control(tagGGRequest, 7)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "malformed") {
			t.Fatalf("GG error = %v, want malformed-request failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GG did not fail on malformed request")
	}
}

// TestGGStopsOnClosedEndpoint verifies RunGG unwinds with ErrClosed when
// its endpoint dies mid-service (a crashed coordinator must not hang the
// process).
func TestGGStopsOnClosedEndpoint(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 1}
	f := transport.NewChanFabric(WorldSize(topo))
	defer f.Close()
	cfg := Config{Topo: topo, MaxIter: 3}
	ep := f.Endpoint(GGRank(topo))

	done := make(chan error, 1)
	go func() { done <- RunGG(ep, cfg) }()
	time.Sleep(10 * time.Millisecond)
	ep.Close()
	select {
	case err := <-done:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("GG error = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GG did not unwind after endpoint close")
	}
}

// TestWorkerFailureThenTeardown verifies the failure model the runtime
// shares with MPI: a silently dead peer leaves BSP partners blocked (there
// is deliberately no failure detector in the data path), the crashed
// worker's own RunWorker returns an error, and a job-level teardown
// (closing the fabric) unwinds every survivor with a transport error
// rather than wrong data or a permanent hang.
func TestWorkerFailureThenTeardown(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	f := transport.NewChanFabric(WorldSize(topo))
	cfg := Config{Topo: topo, MaxIter: 1000} // long run; failure cuts it short

	var wg sync.WaitGroup
	errs := make([]error, topo.Size())
	crashed := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = RunGG(f.Endpoint(GGRank(topo)), cfg)
	}()
	for r := 0; r < topo.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			dim := 4
			funcs := WorkerFuncs{
				ComputeW: func(iter int) []float64 {
					if r == 3 && iter == 5 {
						// Simulate a crash: close our endpoint mid-run.
						f.Endpoint(r).Close()
					}
					return make([]float64, dim)
				},
				ApplyW: func(int, []float64, int) {},
			}
			errs[r] = RunWorker(f.Endpoint(r), cfg, funcs)
			if r == 3 {
				close(crashed)
			}
		}(r)
	}

	select {
	case <-crashed:
	case <-time.After(10 * time.Second):
		f.Close()
		t.Fatal("crashed worker did not unwind")
	}
	if errs[3] == nil {
		t.Fatal("crashed worker reported no error")
	}
	// Job teardown: every survivor must unwind promptly.
	f.Close()
	unwound := make(chan struct{})
	go func() { wg.Wait(); close(unwound) }()
	select {
	case <-unwound:
	case <-time.After(10 * time.Second):
		t.Fatal("survivors deadlocked after teardown")
	}
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed < 2 {
		t.Fatalf("only %d workers observed the failure", failed)
	}
}

// TestWorkerFailurePropagates relies on peers blocking on the dead rank;
// verify the remaining workers see transport errors rather than wrong
// data by checking the error text mentions the transport layer.
func TestWorkerErrorsAreDescriptive(t *testing.T) {
	topo := simnet.Topology{Nodes: 1, WorkersPerNode: 2}
	f := transport.NewChanFabric(WorldSize(topo))
	defer f.Close()
	cfg := Config{Topo: topo, MaxIter: 5}
	// Close the GG before anyone starts: leaders' reports must error.
	f.Endpoint(GGRank(topo)).Close()

	var wg sync.WaitGroup
	errs := make([]error, topo.Size())
	leaderDone := make(chan struct{})
	for r := 0; r < topo.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			funcs := WorkerFuncs{
				ComputeW: func(int) []float64 { return make([]float64, 2) },
				ApplyW:   func(int, []float64, int) {},
			}
			errs[r] = RunWorker(f.Endpoint(r), cfg, funcs)
			if r == 0 {
				close(leaderDone)
			}
		}(r)
	}
	// The non-leader blocks waiting for a broadcast the failed leader will
	// never send; once the leader has unwound, tear the fabric down to
	// release it (in production the process exits here).
	select {
	case <-leaderDone:
	case <-time.After(10 * time.Second):
		t.Fatal("leader did not unwind after GG death")
	}
	f.Close()
	wg.Wait()
	if errs[0] == nil {
		t.Fatal("leader survived a dead GG")
	}
	if !strings.Contains(errs[0].Error(), "GG request") && !strings.Contains(errs[0].Error(), "GG reply") {
		t.Fatalf("leader error %v lacks context", errs[0])
	}
}
