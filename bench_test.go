package psrahgadmm

// One testing.B benchmark per paper table/figure, driving the same
// experiment harness as cmd/psra-bench in quick mode (shrunken sweeps so
// `go test -bench=.` completes in minutes; run the CLI for full-scale
// sweeps and EXPERIMENTS.md for recorded results), plus ablation and
// micro benchmarks for the design choices DESIGN.md §5 calls out.

import (
	"fmt"
	"io"
	"testing"

	"psrahgadmm/internal/bench"
	"psrahgadmm/internal/core"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
)

func benchOpts() bench.Options {
	return bench.Options{Out: io.Discard, Quick: true, Seed: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.RunExperiment(id, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1DatasetStats regenerates Table 1 (dataset summary).
func BenchmarkTable1DatasetStats(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig5Convergence regenerates Figure 5 (relative error vs
// iteration for PSRA-HGADMM / ADMMLib / AD-ADMM across worker counts).
func BenchmarkFig5Convergence(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6SystemTime regenerates Figure 6 (calculation/communication
// time split and accuracy vs cluster size).
func BenchmarkFig6SystemTime(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7DynamicGrouping regenerates Figure 7 (dynamic grouping vs
// ungrouped under injected stragglers).
func BenchmarkFig7DynamicGrouping(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkAllreduceSparseCost regenerates the §4.2 cost-envelope study
// (eqs. 11–16): Ring vs PSR allreduce under extreme nonzero placements.
func BenchmarkAllreduceSparseCost(b *testing.B) { runExperiment(b, "costmodel") }

// BenchmarkDesignAblations runs the DESIGN.md §5 ablation suite
// (threshold sweep, hierarchy on/off, TRON budget, BSP vs SSP).
func BenchmarkDesignAblations(b *testing.B) { runExperiment(b, "ablation") }

// trainBench runs one engine training at a fixed small configuration.
func trainBench(b *testing.B, alg Algorithm, consensus ConsensusMode) {
	b.Helper()
	train, _, err := Generate(News20Like(0.001, 1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Algorithm: alg,
		Consensus: consensus,
		Topo:      Topology{Nodes: 4, WorkersPerNode: 2},
		Rho:       1, Lambda: 1, MaxIter: 10,
		EvalEvery: 10,
		Tron:      solver.TronOptions{MaxIter: 8, MaxCG: 15},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(cfg, train, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-algorithm engine benchmarks (10 iterations, 8 workers).
func BenchmarkEnginePSRAHGADMM(b *testing.B) { trainBench(b, PSRAHGADMM, ConsensusGlobal) }
func BenchmarkEnginePSRAHGADMMGroup(b *testing.B) {
	trainBench(b, PSRAHGADMM, ConsensusGroup)
}
func BenchmarkEnginePSRAADMM(b *testing.B) { trainBench(b, PSRAADMM, "") }
func BenchmarkEngineADMMLib(b *testing.B)  { trainBench(b, ADMMLib, "") }
func BenchmarkEngineADADMM(b *testing.B)   { trainBench(b, ADADMM, "") }
func BenchmarkEngineGCADMM(b *testing.B)   { trainBench(b, GCADMM, "") }

// BenchmarkGroupThresholdAblation sweeps the GQ threshold at fixed
// cluster size under stragglers (timing/consensus trade-off).
func BenchmarkGroupThresholdAblation(b *testing.B) {
	train, _, err := Generate(News20Like(0.001, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, th := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("threshold=%d", th), func(b *testing.B) {
			cfg := Config{
				Algorithm: PSRAHGADMM,
				Consensus: ConsensusGroup,
				Topo:      Topology{Nodes: 8, WorkersPerNode: 1},
				Rho:       1, Lambda: 1, MaxIter: 10,
				GroupThreshold: th,
				EvalEvery:      10,
				Stragglers:     simnet.Stragglers{Seed: 5, Prob: 0.1, Delay: 2e-3},
				Tron:           solver.TronOptions{MaxIter: 8, MaxCG: 15},
			}
			var commTime float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Train(cfg, train, RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				commTime = res.TotalCommTime
			}
			b.ReportMetric(commTime*1e3, "virtual-comm-ms")
		})
	}
}

// BenchmarkHierarchyAblation compares hierarchical PSRA-HGADMM against
// flat PSRA-ADMM at identical numerics.
func BenchmarkHierarchyAblation(b *testing.B) {
	for _, alg := range []Algorithm{PSRAHGADMM, PSRAADMM} {
		b.Run(string(alg), func(b *testing.B) { trainBench(b, alg, "") })
	}
}

// BenchmarkTronBudget measures the subproblem-budget ablation: outer
// ADMM progress per inner Newton budget.
func BenchmarkTronBudget(b *testing.B) {
	train, _, err := Generate(News20Like(0.001, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, mi := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("maxNewton=%d", mi), func(b *testing.B) {
			cfg := Config{
				Algorithm: GCADMM,
				Topo:      Topology{Nodes: 2, WorkersPerNode: 2},
				Rho:       1, Lambda: 1, MaxIter: 10,
				EvalEvery: 10,
				Tron:      solver.TronOptions{MaxIter: mi},
			}
			var obj float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Train(cfg, train, RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				obj = res.FinalObjective()
			}
			b.ReportMetric(obj, "objective")
		})
	}
}

// BenchmarkComputeModelAblation compares BSP (exact, waits) against SSP
// (stale, no waits) at fixed hierarchical topology under core engine cost.
func BenchmarkComputeModelAblation(b *testing.B) {
	for _, row := range []struct {
		name string
		alg  Algorithm
	}{{"BSP", PSRAHGADMM}, {"SSP", ADMMLib}} {
		b.Run(row.name, func(b *testing.B) { trainBench(b, row.alg, "") })
	}
}

// BenchmarkReferenceOptimum measures the f* reference solve.
func BenchmarkReferenceOptimum(b *testing.B) {
	train, _, err := Generate(News20Like(0.0005, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReferenceOptimum(train, 1, 1, 50); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = core.Algorithms // assert the internal package stays reachable from the root
