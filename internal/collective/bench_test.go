package collective

import (
	"math/rand"
	"sync"
	"testing"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
)

func benchSparseVec(r *rand.Rand, dim int, density float64) *sparse.Vector {
	v := sparse.NewVector(dim, 0)
	for i := 0; i < dim; i++ {
		if r.Float64() < density {
			v.Index = append(v.Index, int32(i))
			v.Value = append(v.Value, r.NormFloat64())
		}
	}
	return v
}

// BenchmarkPSRAllreduceSparse drives the paper's sparse allreduce — the
// engine's per-round reduce — across a 4-member chan-fabric world with
// persistent per-member workspaces, the exact setup the core crew keeps
// warm. allocs/op is the whole world's per-round allocation.
func BenchmarkPSRAllreduceSparse(b *testing.B) {
	benchAllreduceSparse(b, func(ws *Workspace, ep transport.Endpoint, g Group, in, out *sparse.Vector) error {
		_, err := ws.PSRAllreduceSparse(ep, g, 64, in, out)
		return err
	})
}

// BenchmarkRingAllreduceSparse is the GR-ADMM ring schedule at the same
// size, for direct comparison.
func BenchmarkRingAllreduceSparse(b *testing.B) {
	benchAllreduceSparse(b, func(ws *Workspace, ep transport.Endpoint, g Group, in, out *sparse.Vector) error {
		_, err := ws.RingAllreduceSparse(ep, g, 64, in, out)
		return err
	})
}

func benchAllreduceSparse(b *testing.B, call func(ws *Workspace, ep transport.Endpoint, g Group, in, out *sparse.Vector) error) {
	const n = 4
	fab := transport.NewChanFabric(n)
	defer fab.Close()
	g := WorldGroup(n)
	r := rand.New(rand.NewSource(21))
	wss := make([]Workspace, n)
	ins := make([]*sparse.Vector, n)
	outs := make([]*sparse.Vector, n)
	eps := make([]transport.Endpoint, n)
	for i := 0; i < n; i++ {
		ins[i] = benchSparseVec(r, 1<<14, 0.05)
		outs[i] = new(sparse.Vector)
		eps[i] = fab.Endpoint(i)
	}
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(n)
		for m := 0; m < n; m++ {
			go func(m int) {
				defer wg.Done()
				if err := call(&wss[m], eps[m], g, ins[m], outs[m]); err != nil {
					b.Error(err)
				}
			}(m)
		}
		wg.Wait()
	}
}
