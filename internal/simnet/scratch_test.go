package simnet

import (
	"math/rand"
	"testing"

	"psrahgadmm/internal/collective"
)

func randTrace(rng *rand.Rand, world, steps, events int) collective.Trace {
	tr := collective.Trace{Steps: steps}
	for i := 0; i < events; i++ {
		tr.Events = append(tr.Events, collective.Event{
			Step:  rng.Intn(steps),
			From:  rng.Intn(world),
			To:    rng.Intn(world),
			Bytes: rng.Intn(4096),
		})
	}
	return tr
}

// TestScratchMatchesAllocating pins the bit-identity contract between the
// scratch timing path and the original map-based one.
func TestScratchMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	topo := Topology{Nodes: 4, WorkersPerNode: 3}
	c := Tianhe2Like()
	var ts TimeScratch
	for round := 0; round < 100; round++ {
		steps := 1 + rng.Intn(6)
		tr1 := randTrace(rng, topo.Size(), steps, rng.Intn(40))
		tr2 := randTrace(rng, topo.Size(), 1+rng.Intn(steps), rng.Intn(40))

		want := c.TraceTime(topo, tr1, tr2)
		got := c.TraceTimeScratch(&ts, topo, tr1, tr2)
		if want != got {
			t.Fatalf("round %d: TraceTimeScratch %v != TraceTime %v", round, got, want)
		}

		wantSteps := c.StepTimes(topo, steps, tr1.Events)
		gotSteps := c.StepTimesScratch(&ts, topo, steps, tr1.Events)
		if len(wantSteps) != len(gotSteps) {
			t.Fatalf("round %d: step count %d != %d", round, len(gotSteps), len(wantSteps))
		}
		for s := range wantSteps {
			if wantSteps[s] != gotSteps[s] {
				t.Fatalf("round %d step %d: %v != %v", round, s, gotSteps[s], wantSteps[s])
			}
		}
	}
}

func TestScratchZeroCostEvents(t *testing.T) {
	topo := Topology{Nodes: 1, WorkersPerNode: 3}
	c := CostModel{} // all-zero model: every event costs 0
	var ts TimeScratch
	tr := collective.Trace{Steps: 1, Events: []collective.Event{
		{Step: 0, From: 0, To: 1, Bytes: 100},
		{Step: 0, From: 0, To: 1, Bytes: 100},
	}}
	if got := c.TraceTimeScratch(&ts, topo, tr); got != 0 {
		t.Fatalf("zero-cost trace time = %v", got)
	}
	// Scratch must be clean afterwards even for zero-cost touches.
	if len(ts.touched) != 0 {
		t.Fatalf("touched not drained: %d", len(ts.touched))
	}
}

func TestScratchSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	topo := Topology{Nodes: 4, WorkersPerNode: 2}
	c := Tianhe2Like()
	var ts TimeScratch
	tr := randTrace(rng, topo.Size(), 4, 64)
	c.TraceTimeScratch(&ts, topo, tr) // warm
	avg := testing.AllocsPerRun(100, func() {
		c.TraceTimeScratch(&ts, topo, tr)
	})
	if avg > 0 {
		t.Errorf("warmed TraceTimeScratch allocates %.1f times, want 0", avg)
	}
}
