package core

import (
	"math"
	"testing"

	"psrahgadmm/internal/checkpoint"
	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/shard"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

// The sharded-state equivalence suite. The refactor's contract has two
// regimes: under FULL subscription (every rank subscribed to every block)
// the sharded engine must reproduce the replicated engine's optimization
// trajectory bit for bit — same z, same objectives, same residuals; under
// PARTIAL subscription it solves the same problem with a per-block
// contributor scaling, converging to the same optimum with a fraction of
// the per-rank memory.

// mathFieldsEqual compares the optimization-trajectory fields of two
// IterStats bitwise (NaN == NaN). Wire accounting (Bytes, CommTime) is
// deliberately excluded: the shard-aware collective runs a different
// schedule, so its traffic differs even when the math is identical.
func mathFieldsEqual(a, b IterStat) bool {
	feq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.Iter == b.Iter &&
		feq(a.Objective, b.Objective) && feq(a.Accuracy, b.Accuracy) &&
		feq(a.PrimalRes, b.PrimalRes) && feq(a.DualRes, b.DualRes) &&
		feq(a.Rho, b.Rho)
}

func runPair(t *testing.T, cfg Config, train, test *dataset.Dataset, blocks int) (*Result, *Result) {
	t.Helper()
	dense, err := Run(cfg, train, RunOptions{Test: test})
	if err != nil {
		t.Fatalf("replicated run: %v", err)
	}
	sh := cfg
	sh.ShardedState = true
	sh.ShardBlocks = blocks
	sharded, err := Run(sh, train, RunOptions{Test: test})
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	return dense, sharded
}

// TestShardedFullSubscriptionBitIdentical: with one block spanning the
// whole dimension, every rank subscribes to everything, so the sharded
// engine's per-block machinery — the compact store, the restricted sparse
// views, the subscriber-count z-scaling, the shard-aware collective — must
// reduce exactly to the replicated recursion for every supported topology.
func TestShardedFullSubscriptionBitIdentical(t *testing.T) {
	train, test := testData(t, 160)
	for _, alg := range []Algorithm{PSRAADMM, GCADMM, PSRAHGADMM} {
		t.Run(string(alg), func(t *testing.T) {
			cfg := baseConfig(alg, 4, 2)
			cfg.MaxIter = 10
			cfg.EvalEvery = 2
			cfg.GroupThreshold = 2
			dense, sharded := runPair(t, cfg, train, test, 1)
			for i := range dense.History {
				if !mathFieldsEqual(dense.History[i], sharded.History[i]) {
					t.Fatalf("iter %d diverged:\nreplicated %+v\nsharded    %+v",
						i, dense.History[i], sharded.History[i])
				}
			}
			if !vec.Equal(dense.Z, sharded.Z) {
				t.Fatal("final iterates differ bitwise")
			}
		})
	}
}

// denseTouchData builds a problem where every worker's shard touches every
// block of an 8-block partition — full subscription with real multi-block
// structure, so the per-block code paths (block cursors, restricted
// assembly, per-block counts) all run while the bit-identity contract
// still applies.
func denseTouchData(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train, test, err := dataset.Generate(dataset.SynthConfig{
		Name: "full-touch", Dim: 48, TrainRows: 240, TestRows: 40, RowNNZ: 10,
		ZipfS: 1.1, SignalNNZ: 20, NoiseFlip: 0.02, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

// TestShardedMultiBlockBitIdentical is the property test of the bitwise
// contract on a REAL multi-block partition: flat, star, and tree sharded
// runs must follow the replicated trajectory exactly whenever subscription
// is full — which the test verifies from the actual shard layout rather
// than assuming.
func TestShardedMultiBlockBitIdentical(t *testing.T) {
	train, test := denseTouchData(t)
	const blocks = 8
	for _, alg := range []Algorithm{PSRAADMM, GCADMM, PSRAHGADMM} {
		t.Run(string(alg), func(t *testing.T) {
			cfg := baseConfig(alg, 3, 2)
			cfg.MaxIter = 8
			cfg.EvalEvery = 2
			cfg.GroupThreshold = 2

			// Precondition, not assumption: every rank must touch all 8
			// blocks, or the bitwise claim does not apply.
			ws := newWorkers(cfg, train)
			active := make([][]int32, len(ws))
			for i, w := range ws {
				active[i] = w.active
			}
			m := shard.NewMap(shard.NewPartition(train.Dim(), blocks), active)
			if !m.FullSubscription() {
				t.Fatal("test data does not give full subscription; pick denser data")
			}

			dense, sharded := runPair(t, cfg, train, test, blocks)
			for i := range dense.History {
				if !mathFieldsEqual(dense.History[i], sharded.History[i]) {
					t.Fatalf("iter %d diverged:\nreplicated %+v\nsharded    %+v",
						i, dense.History[i], sharded.History[i])
				}
			}
			if !vec.Equal(dense.Z, sharded.Z) {
				t.Fatal("final iterates differ bitwise")
			}
		})
	}
}

// TestShardedPartialSubscriptionMemoryAndConvergence is the acceptance
// test of the tentpole: at 16 ranks on sparse synthetic data, the sharded
// engine must hold at least 4× less consensus state per rank than the
// replicated engine while converging to within 1e-3 relative objective of
// it, and its shard-aware collective must also move fewer bytes.
func TestShardedPartialSubscriptionMemoryAndConvergence(t *testing.T) {
	train, _, err := dataset.Generate(dataset.SynthConfig{
		Name: "shard-mem", Dim: 16000, TrainRows: 480, TestRows: 8, RowNNZ: 6,
		ZipfS: 1.4, SignalNNZ: 60, NoiseFlip: 0.02, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(PSRAADMM, 8, 2) // 16 ranks
	cfg.MaxIter = 80
	cfg.EvalEvery = cfg.MaxIter
	dense, sharded := runPair(t, cfg, train, nil, 128)

	dRB := dense.History[len(dense.History)-1].ResidentBytes
	sRB := sharded.History[len(sharded.History)-1].ResidentBytes
	if dRB <= 0 || sRB <= 0 {
		t.Fatalf("resident bytes not reported: dense=%d sharded=%d", dRB, sRB)
	}
	if ratio := float64(dRB) / float64(sRB); ratio < 4 {
		t.Fatalf("per-rank memory reduction %.2fx (dense %d B, sharded %d B), want >= 4x", ratio, dRB, sRB)
	}
	fd, fs := dense.FinalObjective(), sharded.FinalObjective()
	if rel := math.Abs(fs-fd) / math.Abs(fd); rel > 1e-3 {
		t.Fatalf("sharded objective %v vs replicated %v: rel %v > 1e-3", fs, fd, rel)
	}
	if sharded.TotalBytes >= dense.TotalBytes {
		t.Fatalf("shard-aware collective moved %d bytes, replicated %d: expected fewer", sharded.TotalBytes, dense.TotalBytes)
	}
}

// TestShardedChaosRejoinResume: the fail-recover story under sharded
// state. A rank dies mid-run and rejoins; the run checkpoints every
// iteration into sharded PSCK snapshots (each rank's z entry is its
// compact subscribed-block store); cutting the run and resuming from the
// snapshot must reproduce the uninterrupted chaos run bit for bit — which
// it can only do if the killed-and-rejoined rank's owned blocks came back
// intact from the snapshot and the rejoin warm-start.
func TestShardedChaosRejoinResume(t *testing.T) {
	train, test := testData(t, 160)
	const cut = 9
	mk := func() Config {
		cfg := baseConfig(PSRAHGADMMSharded, 4, 2)
		cfg.MaxIter = 14
		cfg.GroupThreshold = 2
		cfg.Elastic = true
		cfg.Faults = &transport.FaultPlan{
			Seed:              13,
			KillAtIteration:   map[int]int{3: 4},
			RejoinAtIteration: map[int]int{3: 7},
		}
		return cfg
	}

	golden, err := Run(mk(), train, RunOptions{Test: test})
	if err != nil {
		t.Fatal(err)
	}
	if golden.Degraded || golden.LiveWorkers != 8 {
		t.Fatalf("chaos run did not recover: live=%d degraded=%v", golden.LiveWorkers, golden.Degraded)
	}

	store := checkpoint.NewMemStore()
	cfgCut := mk()
	cfgCut.MaxIter = cut
	if _, err := Run(cfgCut, train, RunOptions{
		Test:       test,
		Checkpoint: &CheckpointOptions{Store: store, Every: 1},
	}); err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(mk(), train, RunOptions{
		Test:       test,
		Checkpoint: &CheckpointOptions{Store: store, Every: 1, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.History) != len(golden.History)-cut {
		t.Fatalf("resumed history %d iterations, want %d", len(resumed.History), len(golden.History)-cut)
	}
	for i, got := range resumed.History {
		if !statBitEqual(got, golden.History[cut+i]) {
			t.Fatalf("iter %d diverged after resume:\nresumed %+v\ngolden  %+v", cut+i, got, golden.History[cut+i])
		}
	}
	if !vec.Equal(resumed.Z, golden.Z) {
		t.Fatal("resumed final iterate differs from uninterrupted chaos run")
	}
}

// TestShardedRejectsUnsupportedCompositions: sharded state is defined for
// flat/star/tree consensus only (any sync model); the ring hierarchy and
// group-local consensus must be rejected up front, not fail mysteriously
// mid-run. SSP/async compositions are no longer rejected — the StateStore
// layer made them first-class (see TestShardedSSPAndAsyncConverge).
func TestShardedRejectsUnsupportedCompositions(t *testing.T) {
	train, _ := testData(t, 80)
	for _, alg := range []Algorithm{GRADMM, PSRAHGADMMGroup, ADMMLib} {
		cfg := baseConfig(alg, 2, 2)
		cfg.MaxIter = 2
		cfg.ShardedState = true
		if _, err := Run(cfg, train, RunOptions{}); err == nil {
			t.Fatalf("%s accepted sharded state", alg)
		}
	}
}

// TestShardedSSPAndAsyncConverge is the StateStore refactor's acceptance
// test: the compositions the old "sharded state requires BSP" guard
// forbade must now be first-class. At 64 ranks with real compute jitter
// (so SSP staleness actually occurs — stale nodes' cached contributions
// keep feeding their blocks while the fresh quorum advances), both
// psra-hgadmm-sharded-ssp and psra-hgadmm-sharded-async must converge to
// within 1e-3 relative objective error of the dense BSP reference.
func TestShardedSSPAndAsyncConverge(t *testing.T) {
	train, _, err := dataset.Generate(dataset.SynthConfig{
		Name: "shard-ssp", Dim: 2000, TrainRows: 640, TestRows: 8, RowNNZ: 8,
		ZipfS: 1.3, SignalNNZ: 50, NoiseFlip: 0.02, Seed: 53,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(alg Algorithm, iters int) Config {
		cfg := baseConfig(alg, 16, 4) // 64 ranks
		cfg.MaxIter = iters
		cfg.EvalEvery = cfg.MaxIter
		cfg.GroupThreshold = 4
		cfg.Jitter = simnet.Jitter{Seed: 7, Amp: 0.5}
		return cfg
	}
	ref, err := Run(mk(PSRAHGADMM, 1600), train, RunOptions{})
	if err != nil {
		t.Fatalf("dense BSP reference: %v", err)
	}
	fRef := ref.FinalObjective()
	// Staleness slows per-round progress (a stale node's cached w keeps
	// feeding its blocks until it refreshes), so the relaxed barriers get
	// a longer horizon to reach the same optimum — the contract is WHERE
	// they converge, not how fast. Async (quorum of one) is the stalest
	// composition and needs the longest tail.
	for _, tc := range []struct {
		alg   Algorithm
		iters int
	}{
		{PSRAHGADMMShardedSSP, 1600},
		{PSRAHGADMMShardedAsync, 4800},
	} {
		alg := tc.alg
		t.Run(string(alg), func(t *testing.T) {
			cfg := mk(alg, tc.iters)
			cfg.ShardBlocks = 256
			res, err := Run(cfg, train, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rb := res.History[len(res.History)-1].ResidentBytes; rb <= 0 {
				t.Fatalf("resident bytes not reported under %s: %d", alg, rb)
			}
			f := res.FinalObjective()
			if rel := math.Abs(f-fRef) / math.Abs(fRef); rel > 1e-3 {
				t.Fatalf("%s objective %v vs dense BSP %v: rel %v > 1e-3", alg, f, fRef, rel)
			}
		})
	}
}

// TestShardedSSPChaosRejoinConverges: the elastic story under the new
// sharded×SSP composition. A rank dies mid-run and rejoins; the run must
// complete with the world whole again and land near the undisturbed run's
// optimum. Bit-exactness is NOT expected — an SSP rejoin is a warm start
// that perturbs admission order — so the contract is convergence.
func TestShardedSSPChaosRejoinConverges(t *testing.T) {
	train, test := testData(t, 160)
	mk := func() Config {
		cfg := baseConfig(PSRAHGADMMShardedSSP, 4, 2)
		cfg.MaxIter = 40
		cfg.EvalEvery = cfg.MaxIter
		cfg.GroupThreshold = 2
		cfg.Elastic = true
		cfg.Jitter = simnet.Jitter{Seed: 11, Amp: 0.3}
		return cfg
	}
	calm, err := Run(mk(), train, RunOptions{Test: test})
	if err != nil {
		t.Fatalf("undisturbed run: %v", err)
	}
	cfg := mk()
	cfg.Faults = &transport.FaultPlan{
		Seed:              13,
		KillAtIteration:   map[int]int{3: 4},
		RejoinAtIteration: map[int]int{3: 9},
	}
	chaos, err := Run(cfg, train, RunOptions{Test: test})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if chaos.Degraded || chaos.LiveWorkers != 8 {
		t.Fatalf("chaos run did not recover: live=%d degraded=%v", chaos.LiveWorkers, chaos.Degraded)
	}
	fc, fu := chaos.FinalObjective(), calm.FinalObjective()
	if rel := math.Abs(fc-fu) / math.Abs(fu); rel > 1e-2 {
		t.Fatalf("kill+rejoin objective %v vs undisturbed %v: rel %v > 1e-2", fc, fu, rel)
	}
}

// TestResidentBytesReportedEverySyncModel pins the satellite fix: the
// per-rank consensus-state footprint must be reported every iteration
// under BSP, SSP, AND async — replicated and sharded alike — not only on
// the BSP path the pre-StateStore engine measured.
func TestResidentBytesReportedEverySyncModel(t *testing.T) {
	train, _ := testData(t, 80)
	for _, alg := range []Algorithm{
		PSRAHGADMMSharded,      // sharded × BSP
		PSRAHGADMMShardedSSP,   // sharded × SSP
		PSRAHGADMMShardedAsync, // sharded × async
		ADADMM,                 // replicated × SSP (star)
		PSRAADMMAsync,          // replicated × async (flat)
	} {
		t.Run(string(alg), func(t *testing.T) {
			cfg := baseConfig(alg, 2, 2)
			cfg.MaxIter = 6
			res, err := Run(cfg, train, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range res.History {
				if s.ResidentBytes <= 0 {
					t.Fatalf("%s iter %d: ResidentBytes %d, want > 0", alg, s.Iter, s.ResidentBytes)
				}
			}
		})
	}
}

// TestAgeScoringSmallKConvergence is the codec satellite's acceptance at
// the integration level: at a starvation-inducing selection size (k=4 of
// a ~200-coordinate support) the age-weighted run must converge — real
// progress, and a final objective within a modest factor of plain
// magnitude selection. Age scoring trades a little top-coordinate
// bandwidth for shipping starved mass, so exact parity is not expected;
// what the test rules out is the round-robin degeneration an unbounded
// age boost produces (2–3× worse objectives before ageBoostCap bounded
// the multiplier). The starvation-rescue property itself is proven
// deterministically in exchange/age_test.go.
func TestAgeScoringSmallKConvergence(t *testing.T) {
	train, _ := testData(t, 160)
	run := func(age bool) *Result {
		cfg := baseConfig(PSRAADMMTopK, 4, 2)
		cfg.MaxIter = 60
		cfg.EvalEvery = cfg.MaxIter
		cfg.CodecTopK = 4
		cfg.CodecAgeScoring = age
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	aged := run(true)
	if f0 := plain.History[0].Objective; plain.FinalObjective() >= 0.8*f0 {
		t.Fatalf("plain top-k made no real progress: %v -> %v", f0, plain.FinalObjective())
	}
	if f0 := aged.History[0].Objective; aged.FinalObjective() >= 0.8*f0 {
		t.Fatalf("age-scored top-k made no real progress: %v -> %v", f0, aged.FinalObjective())
	}
	if aged.FinalObjective() > plain.FinalObjective()*1.15 {
		t.Fatalf("age scoring diverged from plain magnitude at small k: %v vs %v (want within 15%%)",
			aged.FinalObjective(), plain.FinalObjective())
	}
}
