// Package collective implements the group communication algorithms the
// paper studies, written against transport.Endpoint so they run unchanged
// over the in-process and TCP fabrics:
//
//   - RingAllreduce (dense & sparse): the classic two-phase ring of
//     Gibiansky/Baidu, the model used by ADMMLib.
//   - PSRAllreduce (dense & sparse): the paper's contribution (§4.2) — the
//     parameter-server-inspired variant in which block j is *owned* by
//     group member j; Scatter-Reduce sends every block directly to its
//     owner in one step, Allgather broadcasts each owned block back.
//   - Reduce / Broadcast: the intra-node fan-in/fan-out the WLG hierarchy
//     uses between workers and their Leader.
//   - StarAllreduce: gather-to-master + broadcast, the communication
//     pattern of the AD-ADMM baseline's master-worker architecture.
//   - Barrier: BSP synchronization.
//
// Every operation returns a Trace of the messages this rank *sent*
// (payload bytes and logical step), which the simnet cost model folds into
// cluster time. Payload bytes follow the paper's accounting: 12 bytes per
// sparse element (index+value), 8 per dense element.
package collective

import (
	"fmt"

	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// Group is an ordered set of world ranks executing a collective together.
// Position in Ranks defines the member index used by block ownership and
// ring neighbourship. All members must call the collective with an equal
// Group (same order).
type Group struct {
	Ranks []int
}

// NewGroup builds a group over the given world ranks.
func NewGroup(ranks ...int) Group {
	return Group{Ranks: ranks}
}

// WorldGroup returns the group of all ranks 0..n-1.
func WorldGroup(n int) Group {
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	return Group{Ranks: ranks}
}

// Size returns the number of members.
func (g Group) Size() int { return len(g.Ranks) }

// IndexOf returns the member index of world rank r, or -1.
func (g Group) IndexOf(r int) int {
	for i, gr := range g.Ranks {
		if gr == r {
			return i
		}
	}
	return -1
}

// Contains reports whether world rank r is a member.
func (g Group) Contains(r int) bool { return g.IndexOf(r) >= 0 }

// Event records one message sent by the local rank during a collective.
// Events with equal Step are logically concurrent across the cluster;
// the cost model serializes same-source sends within a step through the
// sender's NIC.
type Event struct {
	Step     int
	From, To int
	Bytes    int
}

// Trace is the local rank's send log for one collective invocation.
type Trace struct {
	// Steps is the number of logical steps the collective occupies,
	// identical on every member regardless of how many events the local
	// rank contributed.
	Steps  int
	Events []Event
}

func (t *Trace) add(step, from, to, bytes int) {
	t.Events = append(t.Events, Event{Step: step, From: from, To: to, Bytes: bytes})
}

// TotalBytes sums the payload bytes of all local events.
func (t *Trace) TotalBytes() int {
	n := 0
	for _, e := range t.Events {
		n += e.Bytes
	}
	return n
}

// Merge appends other's events shifted after t's steps, producing the trace
// of two collectives executed back to back.
func (t *Trace) Merge(other Trace) {
	for _, e := range other.Events {
		e.Step += t.Steps
		t.Events = append(t.Events, e)
	}
	t.Steps += other.Steps
}

func (g Group) validate(ep transport.Endpoint) (int, error) {
	if g.Size() == 0 {
		return 0, fmt.Errorf("collective: empty group")
	}
	me := g.IndexOf(ep.Rank())
	if me < 0 {
		return 0, fmt.Errorf("collective: rank %d not in group %v", ep.Rank(), g.Ranks)
	}
	seen := make(map[int]bool, g.Size())
	for _, r := range g.Ranks {
		if r < 0 || r >= ep.Size() {
			return 0, fmt.Errorf("collective: group rank %d out of world [0,%d)", r, ep.Size())
		}
		if seen[r] {
			return 0, fmt.Errorf("collective: duplicate rank %d in group", r)
		}
		seen[r] = true
	}
	return me, nil
}

// sendAsync performs the send on a separate goroutine so a rank can post
// its send and immediately turn around to receive, avoiding distributed
// deadlock on fabrics with bounded buffering (TCP).
func sendAsync(ep transport.Endpoint, to int, m wire.Message) chan error {
	ch := make(chan error, 1)
	go func() { ch <- ep.Send(to, m) }()
	return ch
}

// Barrier blocks until every member of g has entered it. Implemented as a
// star: members signal g.Ranks[0], which releases everyone. tag must be
// unique to this synchronization point.
func Barrier(ep transport.Endpoint, g Group, tag int32) (Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return Trace{}, err
	}
	tr := Trace{Steps: 2}
	if g.Size() == 1 {
		return tr, nil
	}
	root := g.Ranks[0]
	if me == 0 {
		for i := 1; i < g.Size(); i++ {
			if _, err := ep.Recv(transport.AnySource, tag); err != nil {
				return tr, err
			}
		}
		for i := 1; i < g.Size(); i++ {
			m := wire.Control(tag + 1)
			if err := ep.Send(g.Ranks[i], m); err != nil {
				return tr, err
			}
			tr.add(1, ep.Rank(), g.Ranks[i], wire.PayloadBytes(m))
		}
		return tr, nil
	}
	m := wire.Control(tag)
	if err := ep.Send(root, m); err != nil {
		return tr, err
	}
	tr.add(0, ep.Rank(), root, wire.PayloadBytes(m))
	if _, err := ep.Recv(root, tag+1); err != nil {
		return tr, err
	}
	return tr, nil
}
