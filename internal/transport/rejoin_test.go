package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"psrahgadmm/internal/wire"
)

// TestTCPRejoinReestablishesMesh is the transport half of fail-recover: a
// rank leaves the mesh, its peers observe the departure, and a restarted
// incarnation re-dials everyone at the same address. The peers' persistent
// accept loops must adopt the new connections, clear the down records, and
// carry traffic in both directions again.
func TestTCPRejoinReestablishesMesh(t *testing.T) {
	const n, victim = 3, 2
	ports := freePorts(t, n)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", ports[i])
	}
	eps := make([]Endpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = NewTCPEndpoint(i, addrs, TCPOptions{DialTimeout: 10 * time.Second})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	defer func() {
		for _, ep := range eps {
			if ep != nil {
				ep.Close()
			}
		}
	}()

	// Sanity traffic, then the victim departs.
	if err := eps[0].Send(victim, wire.Control(1, 7)); err != nil {
		t.Fatal(err)
	}
	if m, err := eps[victim].RecvTimeout(0, 1, 5*time.Second); err != nil || m.Ints[0] != 7 {
		t.Fatalf("pre-departure traffic: %v %v", m, err)
	}
	eps[victim].Close()

	// Both survivors must observe the departure before the restart, so the
	// rejoin exercises the down-record-clearing path, not a silent swap.
	for _, r := range []int{0, 1} {
		deadline := time.Now().Add(10 * time.Second)
		for {
			err := eps[r].Send(victim, wire.Control(2, 0))
			var pd *PeerDownError
			if errors.As(err, &pd) && pd.Peer == victim {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rank %d never observed the departure (last err %v)", r, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The new incarnation dials the whole mesh from the same address.
	rejoined, err := NewTCPEndpoint(victim, addrs, TCPOptions{
		DialTimeout: 10 * time.Second,
		Rejoin:      true,
	})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	eps[victim] = rejoined

	// Traffic flows again in every direction touching the rejoiner.
	for _, r := range []int{0, 1} {
		if err := eps[r].Send(victim, wire.Control(3, int64(10+r))); err != nil {
			t.Fatalf("rank %d send to rejoined: %v", r, err)
		}
		m, err := rejoined.RecvTimeout(r, 3, 5*time.Second)
		if err != nil || m.Ints[0] != int64(10+r) {
			t.Fatalf("rejoined recv from %d: %v %v", r, m, err)
		}
		if err := rejoined.Send(r, wire.Control(4, int64(20+r))); err != nil {
			t.Fatalf("rejoined send to %d: %v", r, err)
		}
		m, err = eps[r].RecvTimeout(victim, 4, 5*time.Second)
		if err != nil || m.Ints[0] != int64(20+r) {
			t.Fatalf("rank %d recv from rejoined: %v %v", r, m, err)
		}
	}

	// Heartbeat state is re-armed: the link stays quiet for a few intervals
	// without being re-declared dead.
	time.Sleep(300 * time.Millisecond)
	if err := eps[0].Send(victim, wire.Control(5, 1)); err != nil {
		t.Fatalf("link died after idle period: %v", err)
	}
	if _, err := rejoined.RecvTimeout(0, 5, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}
