package core

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/vec"
)

func nan() float64         { return math.NaN() }
func isNaN(v float64) bool { return math.IsNaN(v) }
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// worker holds one rank's private ADMM state.
//
// The subproblem is solved in the shard's *active feature subspace*: for a
// coordinate j no sample of the shard touches, the x-subproblem objective
// reduces to y_j·x_j + (ρ/2)(x_j − z_j)², whose minimizer is closed-form —
// and since y_j starts at 0, induction over the dual update gives
// y_j ≡ 0 and x_j ≡ z_j there forever, hence w_j = ρ·z_j. Restricting
// TRON to the active columns is therefore *exact*, and it is what makes
// million-dimension problems feasible: per-worker dense work scales with
// the shard's support, not the global dimension. (LIBLINEAR-style sparse
// solvers make the same move.)
type worker struct {
	rank  int
	shard *dataset.Dataset // original shard (full column space, for evaluation)

	// Active-subspace problem.
	active  []int32     // sorted original column ids the shard touches
	compact *sparse.CSR // shard remapped to columns 0..len(active)-1
	obj     *solver.LogisticProx
	xA, yA  []float64 // primal/dual over active columns
	zA      []float64 // consensus gathered onto active columns

	// Consensus view.
	zDense  []float64      // full-dimension copy (evaluation, mean-z)
	zSparse *sparse.Vector // same iterate, sparse (w construction)

	// clock is the worker's virtual time; calTotal accumulates compute.
	clock    float64
	calTotal float64
	lastCal  float64
	tron     solver.Workspace

	// Steady-state reuse (see DESIGN.md "Memory model & buffer
	// ownership"): zScratch is applyW's z-update destination; zOwn
	// double-buffers the sparse consensus view derived in applyZ's nil-
	// zSparse path. The double buffer keeps the vector the worker read
	// this round intact while the next one is built, and because zOwn is
	// worker-private it can never alias a strategy-shared z vector.
	zScratch []float64
	zOwn     [2]*sparse.Vector
	zOwnIdx  int
}

// newWorkers shards the dataset and initializes per-rank state (x=y=z=0,
// paper Algorithm 1 line 2).
func newWorkers(cfg Config, train *dataset.Dataset) []*worker {
	n := cfg.Topo.Size()
	shards := train.Shard(n)
	dim := train.Dim()
	ws := make([]*worker, n)
	for i := range ws {
		w := &worker{rank: i, shard: shards[i]}
		w.buildActive(dim)
		w.obj = solver.NewLogisticProx(w.compact, w.shard.Labels, cfg.Rho, w.yA, w.zA)
		w.zDense = make([]float64, dim)
		w.zSparse = sparse.NewVector(dim, 0)
		ws[i] = w
	}
	return ws
}

// buildActive computes the shard's active column set and the remapped CSR.
func (w *worker) buildActive(dim int) {
	seen := make(map[int32]struct{})
	for _, c := range w.shard.X.ColIdx {
		seen[c] = struct{}{}
	}
	w.active = make([]int32, 0, len(seen))
	for c := range seen {
		w.active = append(w.active, c)
	}
	sort.Slice(w.active, func(a, b int) bool { return w.active[a] < w.active[b] })
	remap := make(map[int32]int32, len(w.active))
	for i, c := range w.active {
		remap[c] = int32(i)
	}
	src := w.shard.X
	w.compact = &sparse.CSR{
		NRows:  src.NRows,
		NCols:  len(w.active),
		RowPtr: src.RowPtr,
		ColIdx: make([]int32, len(src.ColIdx)),
		Val:    src.Val,
	}
	for k, c := range src.ColIdx {
		w.compact.ColIdx[k] = remap[c]
	}
	w.xA = make([]float64, len(w.active))
	w.yA = make([]float64, len(w.active))
	w.zA = make([]float64, len(w.active))
}

// xUpdate solves the local subproblem (eq. 4) with TRON over the active
// subspace and returns the deterministic virtual compute time, scaled by
// the straggler and jitter factors for (iter, rank).
func (w *worker) xUpdate(cfg Config, iter int) float64 {
	// Gather the consensus onto the active columns.
	for i, c := range w.active {
		w.zA[i] = w.zDense[c]
	}
	var res solver.TronResult
	if len(w.active) > 0 {
		res = solver.TRONWorkspace(w.obj, w.xA, cfg.Tron, &w.tron)
	}
	units := simnet.WorkUnits(res.CGIters, res.FunEvals, w.shard.NNZ(), len(w.active))
	t := cfg.Cost.ComputeTime(units)
	node := cfg.Topo.NodeOf(w.rank)
	t *= cfg.Stragglers.NodeFactor(iter, node)
	t *= cfg.Jitter.Factor(iter, w.rank)
	t += cfg.Stragglers.NodeDelay(iter, node)
	w.lastCal = t
	w.calTotal += t
	return t
}

// wSparse assembles w_i = y_i + ρ·x_i (eq. 8) as a sparse vector: the
// active columns carry y_A + ρ·x_A; off-active columns carry ρ·z_j on the
// consensus support (the closed-form x_j = z_j, y_j = 0 there).
func (w *worker) wSparse(rho float64) *sparse.Vector {
	return w.wSparseInto(sparse.NewVector(len(w.zDense), len(w.active)+w.zSparse.NNZ()), rho)
}

// wSparseInto is wSparse writing into out (emptied first, backing arrays
// reused). The merge order and zero-skipping are identical to the
// allocating form, so reuse never perturbs the bit-exact histories.
func (w *worker) wSparseInto(out *sparse.Vector, rho float64) *sparse.Vector {
	out.Reset(len(w.zDense))
	ai, zi := 0, 0
	for ai < len(w.active) || zi < w.zSparse.NNZ() {
		switch {
		case zi >= w.zSparse.NNZ() || (ai < len(w.active) && w.active[ai] < w.zSparse.Index[zi]):
			if v := w.yA[ai] + rho*w.xA[ai]; v != 0 {
				out.Index = append(out.Index, w.active[ai])
				out.Value = append(out.Value, v)
			}
			ai++
		case ai >= len(w.active) || w.zSparse.Index[zi] < w.active[ai]:
			if v := rho * w.zSparse.Value[zi]; v != 0 {
				out.Index = append(out.Index, w.zSparse.Index[zi])
				out.Value = append(out.Value, v)
			}
			zi++
		default: // same column: the active coordinates already include the z pull
			if v := w.yA[ai] + rho*w.xA[ai]; v != 0 {
				out.Index = append(out.Index, w.active[ai])
				out.Value = append(out.Value, v)
			}
			ai++
			zi++
		}
	}
	return out
}

// applyZ consumes the new consensus iterate (the Leader-distributed,
// already-thresholded z) and performs the dual update (eq. 6) over the
// active subspace; off-active duals are identically zero (see the worker
// doc comment). zSparse may be nil, in which case it is derived from
// zDense. The worker copies the dense form and retains the sparse one.
func (w *worker) applyZ(cfg Config, zDense []float64, zSparse *sparse.Vector) {
	copy(w.zDense, zDense)
	if zSparse != nil {
		w.zSparse = zSparse
	} else {
		// Derive the sparse view into the worker-private double buffer:
		// never overwrite the vector w.zSparse currently points at — the
		// last round's wSparse merge may still be comparing against it, and
		// a strategy-shared vector must never be clobbered.
		nb := w.zOwn[w.zOwnIdx]
		if nb == nil {
			nb = new(sparse.Vector)
			w.zOwn[w.zOwnIdx] = nb
		}
		w.zOwnIdx = 1 - w.zOwnIdx
		w.zSparse = sparse.FromDenseInto(nb, zDense)
	}
	for i, c := range w.active {
		w.yA[i] += cfg.Rho * (w.xA[i] - zDense[c])
	}
}

// applyW consumes a raw aggregated W summing `contributors` workers (the
// flat PSRA-ADMM and GC-ADMM paths, where every worker receives W itself):
// the z-update (eq. 10, corrected N·ρ scaling) followed by applyZ.
// ZUpdateL1 overwrites every destination element, so the scratch carries
// no state between rounds.
func (w *worker) applyW(cfg Config, bigW []float64, contributors int) {
	if cap(w.zScratch) < len(bigW) {
		w.zScratch = make([]float64, len(bigW))
	}
	z := w.zScratch[:len(bigW)]
	solver.ZUpdateL1(z, bigW, cfg.Lambda, cfg.Rho, contributors)
	w.applyZ(cfg, z, nil)
}

// rejoin re-admits a revived rank at an iteration boundary. The consensus
// view warm-starts from the cluster's current iterate — the rejoiner's
// first x-update then solves against live consensus, not the stale z it
// died holding — while xA/yA keep their frozen pre-death values (any
// restart point is valid for ADMM, and the stale primal/dual pair is
// closer to the optimum than zero). The clock jump is supplied by the
// engine (the live maximum).
func (w *worker) rejoin(z []float64, clock float64) {
	copy(w.zDense, z)
	// Derive the sparse view through the same double buffer applyZ uses,
	// so the vector the last pre-death round published is never clobbered.
	nb := w.zOwn[w.zOwnIdx]
	if nb == nil {
		nb = new(sparse.Vector)
		w.zOwn[w.zOwnIdx] = nb
	}
	w.zOwnIdx = 1 - w.zOwnIdx
	w.zSparse = sparse.FromDenseInto(nb, z)
	if clock > w.clock {
		w.clock = clock
	}
}

// localLoss evaluates the shard's data-fit term Σ log(1+exp(−b·aᵀz)) at a
// full-dimension point.
func (w *worker) localLoss(z []float64) float64 {
	m := w.shard.X
	var loss float64
	for r := 0; r < m.NRows; r++ {
		loss += solver.LogLoss(w.shard.Labels[r] * m.RowDot(r, z))
	}
	return loss
}

// solverZUpdate is a thin alias keeping the consensus strategies readable.
func solverZUpdate(dst, w []float64, lambda, rho float64, n int) {
	solver.ZUpdateL1(dst, w, lambda, rho, n)
}

// countNonzero counts nonzero entries of a dense slice.
func countNonzero(x []float64) int { return vec.CountNonzero(x) }

// parallelXUpdates runs every listed worker's xUpdate concurrently (the
// updates are independent) and returns each worker's compute time indexed
// as the input. Results are deterministic: each worker's state is private
// and the caller consumes results in fixed order.
func parallelXUpdates(cfg Config, ws []*worker, iter int) []float64 {
	times := make([]float64, len(ws))
	par := runtime.GOMAXPROCS(0)
	if par > len(ws) {
		par = len(ws)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				times[i] = ws[i].xUpdate(cfg, iter)
			}
		}()
	}
	for i := range ws {
		work <- i
	}
	close(work)
	wg.Wait()
	return times
}

// meanZ returns the average of all workers' consensus views — the iterate
// the engine evaluates the global objective at. Under exact consensus all
// views are equal and the mean is that view; under SSP they may differ
// transiently and the mean is the natural cluster-wide summary.
func meanZ(ws []*worker) []float64 {
	out := make([]float64, len(ws[0].zDense))
	meanZInto(out, ws)
	return out
}

// meanZInto is meanZ writing into a caller-owned buffer (the engine's
// steady-state path). Same accumulation order, bit-identical result.
func meanZInto(out []float64, ws []*worker) {
	for i := range out {
		out[i] = 0
	}
	for _, w := range ws {
		vec.AddInto(out, w.zDense)
	}
	vec.Scale(1/float64(len(ws)), out)
}

// computePool is the run's persistent x-update executor: GOMAXPROCS
// worker goroutines fed by an unbuffered index channel, so dispatching a
// round's subproblem solves costs no goroutine spawns and no allocation.
// The job fields (cfg/iter/ws/times) are plain writes made visible by the
// channel sends; the pool is driven only from the single strategy
// goroutine, and wg.Wait orders the executors' writes before the caller
// reads times.
type computePool struct {
	cfg   Config
	iter  int
	ws    []*worker
	times []float64
	jobs  chan int
	wg    sync.WaitGroup
}

func newComputePool() *computePool {
	p := &computePool{jobs: make(chan int)}
	for i := runtime.GOMAXPROCS(0); i > 0; i-- {
		go p.serve()
	}
	return p
}

func (p *computePool) serve() {
	for i := range p.jobs {
		p.times[i] = p.ws[i].xUpdate(p.cfg, p.iter)
		p.wg.Done()
	}
}

// run executes every listed worker's xUpdate concurrently and returns the
// compute times indexed as the input. The returned slice is pool-owned
// scratch, valid only until the next run — callers that retain it copy.
func (p *computePool) run(cfg Config, ws []*worker, iter int) []float64 {
	if cap(p.times) < len(ws) {
		p.times = make([]float64, len(ws))
	}
	p.times = p.times[:len(ws)]
	if len(ws) == 0 {
		return p.times
	}
	p.cfg, p.iter, p.ws = cfg, iter, ws
	p.wg.Add(len(ws))
	for i := range ws {
		p.jobs <- i
	}
	p.wg.Wait()
	return p.times
}

func (p *computePool) close() { close(p.jobs) }

// globalObjective evaluates the paper's eq. 17 at point z over all shards:
// Σ_i f_i(z) + λ‖z‖₁.
func globalObjective(cfg Config, ws []*worker, z []float64) float64 {
	var loss float64
	for _, w := range ws {
		loss += w.localLoss(z)
	}
	return loss + cfg.Lambda*vec.Nrm1(z)
}
