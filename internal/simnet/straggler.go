package simnet

// Stragglers injects deterministic slow-node behaviour following §5.5 of
// the paper: each iteration, randomly selected nodes have their computation
// time prolonged. Selection is a pure function of (Seed, iteration, node),
// so timelines are reproducible and, crucially, the *same* nodes are slow
// for the grouped and ungrouped runs being compared in Figure 7.
type Stragglers struct {
	// Seed drives node selection.
	Seed int64
	// Prob is the per-iteration probability that a node is slow.
	Prob float64
	// Slowdown multiplies a slow node's compute time (> 1). Zero or one
	// disables the multiplicative part.
	Slowdown float64
	// Delay adds a fixed virtual pause (seconds) to a slow node's
	// iteration — the "prolong their computation time" injection of §5.5
	// in additive form. Unlike Slowdown it does not shrink as shards
	// shrink, which is what makes straggler damage grow with cluster
	// size in Figure 7.
	Delay float64
}

// None returns a disabled injector.
func None() Stragglers { return Stragglers{} }

// Default returns the injector used by the Figure 7 experiments: each
// iteration roughly a quarter of the nodes run 4× slower.
func Default(seed int64) Stragglers {
	return Stragglers{Seed: seed, Prob: 0.25, Slowdown: 4}
}

// Enabled reports whether injection is active.
func (s Stragglers) Enabled() bool {
	return s.Prob > 0 && (s.Slowdown > 1 || s.Delay > 0)
}

// splitmix64 is the SplitMix64 mixer — a tiny, high-quality hash giving an
// independent uniform draw per (seed, iter, node) without any RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// selected reports whether `node` is slow at iteration `iter`.
func (s Stragglers) selected(iter, node int) bool {
	if !s.Enabled() {
		return false
	}
	h := splitmix64(uint64(s.Seed)*0x100000001b3 ^ uint64(iter)<<32 ^ uint64(node))
	u := float64(h>>11) / float64(1<<53)
	return u < s.Prob
}

// NodeFactor returns the compute-time multiplier of `node` at iteration
// `iter`: Slowdown if the node is selected, else 1.
func (s Stragglers) NodeFactor(iter, node int) float64 {
	if s.selected(iter, node) && s.Slowdown > 1 {
		return s.Slowdown
	}
	return 1
}

// NodeDelay returns the additive virtual pause of `node` at iteration
// `iter`: Delay if the node is selected, else 0.
func (s Stragglers) NodeDelay(iter, node int) float64 {
	if s.selected(iter, node) && s.Delay > 0 {
		return s.Delay
	}
	return 0
}

// Jitter models the ordinary run-to-run compute variance of a busy
// cluster — OS noise, cache effects, co-scheduled jobs — as a
// deterministic multiplicative factor per (iteration, worker). It is much
// milder than Stragglers (which models §5.5's deliberately prolonged
// nodes) but it is what gives the SSP baselines real stale contributions:
// with perfectly uniform compute times a partial barrier never leaves
// anyone behind.
type Jitter struct {
	// Seed drives the per-(iter, worker) draw.
	Seed int64
	// Amp is the maximum fractional slowdown: factors are uniform in
	// [1, 1+Amp]. 0 disables.
	Amp float64
}

// Enabled reports whether the jitter source is active.
func (j Jitter) Enabled() bool { return j.Amp > 0 }

// Factor returns the compute multiplier for `workerRank` at `iter`,
// uniform in [1, 1+Amp].
func (j Jitter) Factor(iter, workerRank int) float64 {
	if !j.Enabled() {
		return 1
	}
	h := splitmix64(uint64(j.Seed)*0x9e3779b97f4a7c15 ^ uint64(iter)<<20 ^ uint64(workerRank))
	u := float64(h>>11) / float64(1<<53)
	return 1 + j.Amp*u
}
