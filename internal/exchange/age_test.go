package exchange

import (
	"testing"

	"psrahgadmm/internal/sparse"
)

// contribution returns the fixed test vector: two loud coordinates and one
// quiet one that plain magnitude selection starves forever at k=2.
func contribution() *sparse.Vector {
	v := sparse.NewVector(8, 3)
	v.Append(0, 10)
	v.Append(1, 9)
	v.Append(5, 1)
	return v
}

func pinnedState(age bool) *State {
	s := NewState(TopK, 0)
	s.K, s.KMin, s.KMax = 2, 2, 2
	s.AgeScoring = age
	return s
}

// TestAgeScoringRescuesStarvedCoordinate: with damped error feedback the
// quiet coordinate's residual plateaus at v/(1−decay) = 2 < 9, so plain
// magnitude selection never ships it; age-weighted scoring grows its
// priority linearly in rounds waited and must ship it eventually.
func TestAgeScoringRescuesStarvedCoordinate(t *testing.T) {
	const rounds = 25
	shipped := func(s *State) int {
		for r := 0; r < rounds; r++ {
			v := contribution()
			s.Encode(v)
			for _, idx := range v.Index {
				if idx == 5 {
					return r
				}
			}
		}
		return -1
	}
	if r := shipped(pinnedState(false)); r != -1 {
		t.Fatalf("plain magnitude selection shipped the starved coordinate at round %d", r)
	}
	r := shipped(pinnedState(true))
	if r < 0 {
		t.Fatalf("age scoring never shipped the starved coordinate in %d rounds", rounds)
	}
	if r == 0 {
		t.Fatal("age scoring shipped the quiet coordinate on round 0: ages start at zero, so round 0 must match plain magnitude")
	}
}

// TestAgeScoringFirstRoundMatchesMagnitude: an empty residual means every
// age is zero, so the knob must select exactly what magnitude selection
// does — byte for byte.
func TestAgeScoringFirstRoundMatchesMagnitude(t *testing.T) {
	plain, aged := pinnedState(false), pinnedState(true)
	vp, va := contribution(), contribution()
	plain.Encode(vp)
	aged.Encode(va)
	if vp.NNZ() != va.NNZ() {
		t.Fatalf("first-round selections differ: %d vs %d entries", vp.NNZ(), va.NNZ())
	}
	for k := range vp.Index {
		if vp.Index[k] != va.Index[k] || vp.Value[k] != va.Value[k] {
			t.Fatalf("first-round entry %d differs: (%d,%v) vs (%d,%v)",
				k, vp.Index[k], vp.Value[k], va.Index[k], va.Value[k])
		}
	}
}

// TestAgeScoringAgeResetsAfterShip: once the starved coordinate ships, its
// residual age restarts, so it goes back to waiting instead of hogging a
// slot every subsequent round.
func TestAgeScoringAgeResetsAfterShip(t *testing.T) {
	s := pinnedState(true)
	var shipRounds []int
	for r := 0; r < 40; r++ {
		v := contribution()
		s.Encode(v)
		for _, idx := range v.Index {
			if idx == 5 {
				shipRounds = append(shipRounds, r)
			}
		}
	}
	if len(shipRounds) < 2 {
		t.Fatalf("starved coordinate shipped %d times in 40 rounds, want at least 2", len(shipRounds))
	}
	for i := 1; i < len(shipRounds); i++ {
		if shipRounds[i] == shipRounds[i-1]+1 {
			t.Fatalf("starved coordinate shipped in consecutive rounds %v: age did not reset", shipRounds)
		}
	}
	if err := s.Residual().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeSparseBlocksPerBlockScale: block-wise quantization must equal
// quantizing each extracted block on its own (per-block max-abs scale) and
// differ from whole-vector quantization when block magnitudes are skewed.
func TestEncodeSparseBlocksPerBlockScale(t *testing.T) {
	build := func() *sparse.Vector {
		v := sparse.NewVector(16, 0)
		v.Append(0, 1000)
		v.Append(3, 1.25)
		v.Append(8, 0.03)
		v.Append(9, -0.011)
		v.Append(15, 0.5)
		return v
	}
	offs := []int{0, 8, 16}
	c, err := For(SparseQ8)
	if err != nil {
		t.Fatal(err)
	}

	got := build()
	EncodeSparseBlocks(c, got, offs)
	if err := got.Check(); err != nil {
		t.Fatal(err)
	}

	// Reference: quantize each re-based block separately, then stitch.
	ref := build()
	lo8 := ref.Slice(0, 8)
	hi8 := ref.Slice(8, 16)
	QuantizeSparseBits(lo8, 8)
	QuantizeSparseBits(hi8, 8)
	want := sparse.Concat(16, []int{0, 8}, []*sparse.Vector{lo8, hi8})
	if got.NNZ() != want.NNZ() {
		t.Fatalf("block quantization NNZ %d, want %d", got.NNZ(), want.NNZ())
	}
	for k := range want.Index {
		if got.Index[k] != want.Index[k] || got.Value[k] != want.Value[k] {
			t.Fatalf("entry %d: got (%d,%v), want (%d,%v)",
				k, got.Index[k], got.Value[k], want.Index[k], want.Value[k])
		}
	}

	// The skewed first block must show the difference vs a global scale:
	// against max-abs 1000, the 0.03 and 1.25 entries die; per block they
	// survive.
	global := build()
	QuantizeSparseBits(global, 8)
	if global.NNZ() >= got.NNZ() {
		t.Fatalf("global scale kept %d entries, per-block %d: expected per-block to preserve more", global.NNZ(), got.NNZ())
	}

	// Exact codecs are no-ops.
	exact := build()
	sc, _ := For(Sparse)
	EncodeSparseBlocks(sc, exact, offs)
	orig := build()
	if exact.NNZ() != orig.NNZ() {
		t.Fatal("exact codec mutated the vector")
	}
}

// TestResetClearsAgeState is the rejoin contract at the codec level: after
// Reset — what the engine calls when a rank rejoins as a fresh incarnation
// — the residual AND its ages are gone, so the state's next selection is
// bit-identical to a brand-new state's. Without the age wipe, a rejoiner
// would inherit aged priorities describing contributions its dead
// incarnation never shipped.
func TestResetClearsAgeState(t *testing.T) {
	aged := pinnedState(true)
	// Build up residual + age history: the quiet coordinate accrues age.
	for r := 0; r < 5; r++ {
		aged.Encode(contribution())
	}
	if len(aged.ageRes) == 0 {
		t.Fatal("test premise broken: no age state accrued after 5 rounds")
	}
	aged.Reset()
	if len(aged.ageRes) != 0 || aged.residual.NNZ() != 0 {
		t.Fatalf("Reset left state behind: %d ages, %d residual entries",
			len(aged.ageRes), aged.residual.NNZ())
	}
	// Selection after Reset must match a pristine state's first round.
	fresh := pinnedState(true)
	// Reset zeroes K so budgeted states re-derive it; this pinned state has
	// no budget, so restore the fixed selection size as the engine's rejoin
	// path relies on first-encode re-derivation.
	aged.K = 2
	vr, vf := contribution(), contribution()
	aged.Encode(vr)
	fresh.Encode(vf)
	if vr.NNZ() != vf.NNZ() {
		t.Fatalf("post-reset selection differs from pristine: %d vs %d entries", vr.NNZ(), vf.NNZ())
	}
	for k := range vr.Index {
		if vr.Index[k] != vf.Index[k] || vr.Value[k] != vf.Value[k] {
			t.Fatalf("post-reset entry %d differs: (%d,%v) vs (%d,%v)",
				k, vr.Index[k], vr.Value[k], vf.Index[k], vf.Value[k])
		}
	}
}
