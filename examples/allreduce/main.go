// Allreduce: Ring-Allreduce vs the paper's PSR-Allreduce on sparse
// vectors, run for real over the in-process fabric, with virtual cluster
// timings from the α/β cost model. Demonstrates §4.2's claim (eqs. 11–16):
// the two models tie when nonzeros spread evenly, but when they
// concentrate in one block, the ring's circulating partial sums blow up
// while PSR's direct-to-owner schedule stays bounded.
//
//	go run ./examples/allreduce
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

const (
	workers = 8
	dim     = 1 << 18
	nnz     = 4096 // nonzeros per worker
)

func main() {
	cost := simnet.Tianhe2Like()
	topo := simnet.Topology{Nodes: workers, WorkersPerNode: 1}

	for _, concentrated := range []bool{false, true} {
		label := "uniform nonzeros"
		if concentrated {
			label = "all nonzeros in block 0 (ring's worst case)"
		}
		inputs := build(concentrated)

		ringOut, ringTrace := run(true, inputs)
		psrOut, psrTrace := run(false, inputs)

		// Both must compute the identical sum.
		if !vec.WithinTol(ringOut.ToDense(), psrOut.ToDense(), 1e-9) {
			log.Fatal("ring and PSR disagree on the sum")
		}
		ringT := cost.TraceTime(topo, ringTrace...)
		psrT := cost.TraceTime(topo, psrTrace...)
		fmt.Printf("%s:\n", label)
		fmt.Printf("  ring allreduce: %8.1fµs  (%7d payload bytes)\n", ringT*1e6, totalBytes(ringTrace))
		fmt.Printf("  psr  allreduce: %8.1fµs  (%7d payload bytes)\n", psrT*1e6, totalBytes(psrTrace))
		fmt.Printf("  ring/psr time ratio: %.2f\n\n", ringT/psrT)
	}
}

// build creates the 8 workers' sparse inputs.
func build(concentrated bool) []*sparse.Vector {
	r := rand.New(rand.NewSource(5))
	chunks := vec.Split(dim, workers)
	out := make([]*sparse.Vector, workers)
	for m := range out {
		pos := map[int32]float64{}
		for len(pos) < nnz {
			var idx int
			if concentrated {
				idx = chunks[0].Lo + r.Intn(chunks[0].Hi-chunks[0].Lo)
			} else {
				idx = r.Intn(dim)
			}
			pos[int32(idx)] = r.NormFloat64()
		}
		out[m] = sparse.FromMap(dim, pos)
	}
	return out
}

// run executes the collective for real: one goroutine per member over a
// channel fabric.
func run(ring bool, inputs []*sparse.Vector) (*sparse.Vector, []collective.Trace) {
	fab := transport.NewChanFabric(workers)
	defer fab.Close()
	g := collective.WorldGroup(workers)
	results := make([]*sparse.Vector, workers)
	traces := make([]collective.Trace, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if ring {
				results[i], traces[i], err = collective.RingAllreduceSparse(fab.Endpoint(i), g, 1, inputs[i])
			} else {
				results[i], traces[i], err = collective.PSRAllreduceSparse(fab.Endpoint(i), g, 1, inputs[i])
			}
			if err != nil {
				log.Fatal(err)
			}
		}(i)
	}
	wg.Wait()
	return results[0], traces
}

func totalBytes(traces []collective.Trace) int {
	n := 0
	for _, t := range traces {
		n += t.TotalBytes()
	}
	return n
}
