package wlg

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"psrahgadmm/internal/raceflag"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/transport"
)

// runWorldMallocs runs a complete WLG world (workers + GG) on a chan
// fabric with allocation-free callbacks and returns the heap objects the
// whole world allocated.
func runWorldMallocs(t *testing.T, cfg Config, contrib [][]float64) int64 {
	t.Helper()
	topo := cfg.Topo
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	f := transport.NewChanFabric(WorldSize(topo))
	var wg sync.WaitGroup
	errCh := make(chan error, WorldSize(topo))
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunGG(f.Endpoint(GGRank(topo)), cfg); err != nil {
			errCh <- fmt.Errorf("GG: %w", err)
		}
	}()
	for r := 0; r < topo.Size(); r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			funcs := WorkerFuncs{
				ComputeW: func(iter int) []float64 { return contrib[r] },
				ApplyW:   func(iter int, w []float64, n int) {},
			}
			if err := RunWorker(f.Endpoint(r), cfg, funcs); err != nil {
				errCh <- fmt.Errorf("worker %d: %w", r, err)
			}
		}()
	}
	wg.Wait()
	f.Close()
	runtime.ReadMemStats(&after)
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return int64(after.Mallocs - before.Mallocs)
}

// TestWLGSteadyStateAllocBudget bounds the per-iteration allocation rate
// of a warmed 2-group WLG world (4 nodes × 2 workers, threshold 2) on the
// in-process fabric. The runtime itself — contribution buffers, collective
// workspaces, group/control scratch — allocates nothing once warm (see
// DESIGN.md "Memory model & buffer ownership"); what remains is the chan
// fabric's per-message defensive copies and the GG's per-iteration queue
// bookkeeping, which together bound the budget. Measured marginally (two
// world runs differing only in MaxIter) so setup costs cancel.
func TestWLGSteadyStateAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	topo := simnet.Topology{Nodes: 4, WorkersPerNode: 2}
	const dim = 256
	contrib := make([][]float64, topo.Size())
	for r := range contrib {
		contrib[r] = make([]float64, dim)
		for j := range contrib[r] {
			contrib[r][j] = float64(r + j)
		}
	}
	base := Config{Topo: topo, GroupThreshold: 2}

	const n1, n2 = 20, 120
	best := math.Inf(1)
	for trial := 0; trial < 3; trial++ {
		c1, c2 := base, base
		c1.MaxIter, c2.MaxIter = n1, n2
		m1 := runWorldMallocs(t, c1, contrib)
		m2 := runWorldMallocs(t, c2, contrib)
		if perIter := float64(m2-m1) / float64(n2-n1); perIter < best {
			best = perIter
		}
	}
	// The budget is for the WHOLE 9-endpoint world per iteration: ~26
	// fabric messages (intra reduce/broadcast, GG round trips, inter
	// allreduce) at 2–3 objects each plus GG map traffic. Headroom is
	// deliberate slack for runtime noise, not license for runtime-side
	// allocation — the runtime's own loop must stay at zero.
	const budget = 64.0
	t.Logf("wlg world allocations: %.1f objects/iter (budget %g)", best, budget)
	if best > budget {
		t.Fatalf("wlg world allocations: %.1f objects/iter exceeds budget %g", best, budget)
	}
}
