package core

import (
	"math"
	"testing"

	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/vec"
)

func TestGroupConsensusMakesProgress(t *testing.T) {
	train, test := testData(t, 160)
	cfg := baseConfig(PSRAHGADMM, 8, 1)
	cfg.Consensus = ConsensusGroup
	cfg.GroupThreshold = 2
	cfg.MaxIter = 40
	cfg.Jitter = simnet.Jitter{Seed: 4, Amp: 0.5} // rotates group membership
	res, err := Run(cfg, train, RunOptions{Test: test})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalObjective() >= res.History[0].Objective {
		t.Fatal("group-local consensus made no progress")
	}
	if res.FinalAccuracy() < 0.6 {
		t.Fatalf("accuracy %v", res.FinalAccuracy())
	}
}

func TestGroupConsensusIsolatesStragglerDelay(t *testing.T) {
	// A fixed additive straggler delay must hurt the ungrouped run (every
	// iteration gated by the slowest node) far more than the grouped run
	// (only the straggler's own group stalls). This is the Figure 7
	// mechanism in unit-test form.
	train, _ := testData(t, 240)
	run := func(threshold int) float64 {
		cfg := baseConfig(PSRAHGADMM, 16, 1)
		cfg.Consensus = ConsensusGroup
		cfg.GroupThreshold = threshold
		cfg.MaxIter = 20
		cfg.EvalEvery = 20
		cfg.Stragglers = simnet.Stragglers{Seed: 12, Prob: 0.06, Delay: 5e-3}
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalCommTime
	}
	grouped := run(4)
	ungrouped := run(16)
	if grouped*1.5 > ungrouped {
		t.Fatalf("grouping isolated too little: grouped %v vs ungrouped %v", grouped, ungrouped)
	}
}

func TestGroupConsensusEqualsGlobalWhenSingleGroup(t *testing.T) {
	// With threshold = all nodes the group reading degenerates to one
	// global group — the trajectories of the two modes must agree.
	train, _ := testData(t, 120)
	run := func(mode ConsensusMode) []IterStat {
		cfg := baseConfig(PSRAHGADMM, 4, 2)
		cfg.Consensus = mode
		cfg.GroupThreshold = 4
		cfg.MaxIter = 12
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.History
	}
	global := run(ConsensusGlobal)
	group := run(ConsensusGroup)
	for i := range global {
		g, p := global[i].Objective, group[i].Objective
		if math.Abs(g-p) > 1e-6*(1+math.Abs(g)) {
			t.Fatalf("iter %d: global %v vs single-group %v", i, g, p)
		}
	}
}

func TestTreeDepthGrowsWithSmallerThreshold(t *testing.T) {
	// Smaller fan-in → deeper staged aggregation tree → more GG round
	// trips and inter-level traffic. Verify through byte accounting.
	train, _ := testData(t, 160)
	bytesFor := func(threshold int) int64 {
		cfg := baseConfig(PSRAHGADMM, 8, 1)
		cfg.GroupThreshold = threshold
		cfg.MaxIter = 5
		cfg.EvalEvery = 5
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalBytes
	}
	deep := bytesFor(2)    // binary tree: 3 levels
	shallow := bytesFor(8) // single global group
	if deep <= shallow {
		t.Fatalf("deep tree bytes %d not above flat %d", deep, shallow)
	}
}

func TestActiveSubspaceMatchesFullSolve(t *testing.T) {
	// The active-subspace restriction must be exact: with tight subproblem
	// tolerances, a single worker holding all data follows the same
	// objective trajectory as the plain full-dimension N=1 consensus ADMM
	// recursion implemented directly with the solver package.
	train, _ := testData(t, 100)
	cfg := baseConfig(GCADMM, 1, 1)
	cfg.MaxIter = 15
	cfg.Tron = solver.TronOptions{GradTol: 1e-9, MaxIter: 200, MaxCG: 200, CGTol: 1e-4}
	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	dim := train.Dim()
	x := make([]float64, dim)
	y := make([]float64, dim)
	z := make([]float64, dim)
	w := make([]float64, dim)
	obj := solver.NewLogisticProx(train.X, train.Labels, cfg.Rho, y, z)
	for k := 0; k < cfg.MaxIter; k++ {
		solver.TRON(obj, x, cfg.Tron)
		solver.WLocal(w, y, x, cfg.Rho)
		solver.ZUpdateL1(z, w, cfg.Lambda, cfg.Rho, 1)
		solver.DualUpdate(y, x, z, cfg.Rho)
		want := obj.LocalLoss(z) + cfg.Lambda*vec.Nrm1(z)
		got := res.History[k].Objective
		if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("iter %d: engine %v vs full-dim reference %v", k, got, want)
		}
	}
}

var _ = vec.Clone
