package core

import (
	"fmt"
	"sort"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/exchange"
)

// The algorithm registry: every runnable variant is a named binding of the
// three strategy axes. The paper's six algorithms are just entries here —
// GADMM-style topology changes, Zhu-style synchronization changes, and
// lossy-exchange changes are one Register call each, not a new engine.

// Variant binds an algorithm name to a (consensus, sync, codec) triple.
type Variant struct {
	Name      Algorithm
	Consensus ConsensusKind
	Sync      SyncKind
	Codec     exchange.Kind
	// Sharded runs the variant with block-sharded consensus state: the
	// model dimension is block-partitioned, every rank holds only the
	// blocks its data touches, and the z-update averages each block over
	// its live subscribers. Config.ShardedState sets the same bit per run.
	Sharded bool
	// Aggregator is the variant's default consensus reduce statistic (a
	// collective.Agg*Name); empty means "mean", the exact sum-then-divide
	// the paper's algorithms use. Config.Aggregator overrides it per run.
	Aggregator string
	// Description is the one-line summary the CLIs print when enumerating
	// the registry.
	Description string
}

var registry = struct {
	order  []Algorithm
	byName map[Algorithm]Variant
}{byName: map[Algorithm]Variant{}}

// Register adds a variant to the registry. It panics on a duplicate name
// or an inexpressible combination (the hierarchical sparse strategies have
// no dense wire format), since registrations are package-init-time
// programming errors, not runtime conditions.
func Register(v Variant) {
	if v.Name == "" {
		panic("core: Register: empty algorithm name")
	}
	if _, dup := registry.byName[v.Name]; dup {
		panic(fmt.Sprintf("core: Register: duplicate algorithm %q", v.Name))
	}
	if _, err := exchange.For(v.Codec); err != nil {
		panic(fmt.Sprintf("core: Register(%s): %v", v.Name, err))
	}
	switch v.Consensus {
	case ConsensusStar, ConsensusRing, ConsensusFlat, ConsensusTree, ConsensusGroupLocal:
	default:
		panic(fmt.Sprintf("core: Register(%s): unknown consensus %q", v.Name, v.Consensus))
	}
	switch v.Sync {
	case SyncBSP, SyncSSP, SyncAsync:
	default:
		panic(fmt.Sprintf("core: Register(%s): unknown sync %q", v.Name, v.Sync))
	}
	if sparseOnly(v.Consensus) && denseKind(v.Codec) {
		panic(fmt.Sprintf("core: Register(%s): %s consensus cannot carry the %s codec",
			v.Name, v.Consensus, v.Codec))
	}
	// Sharded state composes with every sync model (the StateStore layer
	// scales each block by its live subscribers regardless of admission
	// order); only the consensus axis is constrained — the ring hierarchy
	// and group-local consensus assume a full-width aggregate.
	if v.Sharded {
		switch v.Consensus {
		case ConsensusFlat, ConsensusStar, ConsensusTree:
		default:
			panic(fmt.Sprintf("core: Register(%s): sharded state does not support %s consensus", v.Name, v.Consensus))
		}
	}
	// Robust aggregators are non-associative: every contribution must meet
	// at one combine point (a PSR owner, the star master, a single tree
	// merge). The pairwise ring and the group-local split have no such
	// point, and sharded robustness needs flat's per-block contributor
	// sets.
	if agg, err := collective.ParseAgg(v.Aggregator); err != nil {
		panic(fmt.Sprintf("core: Register(%s): %v", v.Name, err))
	} else if agg != collective.AggMean {
		switch v.Consensus {
		case ConsensusFlat, ConsensusStar, ConsensusTree:
		default:
			panic(fmt.Sprintf("core: Register(%s): %s consensus cannot host the %s aggregator", v.Name, v.Consensus, v.Aggregator))
		}
		if v.Sharded && v.Consensus != ConsensusFlat {
			panic(fmt.Sprintf("core: Register(%s): sharded %s state cannot host the %s aggregator", v.Name, v.Consensus, v.Aggregator))
		}
	}
	registry.byName[v.Name] = v
	registry.order = append(registry.order, v.Name)
}

func sparseOnly(k ConsensusKind) bool {
	return k == ConsensusFlat || k == ConsensusTree || k == ConsensusGroupLocal
}

func denseKind(k exchange.Kind) bool {
	return k == exchange.Dense || k == exchange.DenseF32
}

// Lookup returns the registered variant for name.
func Lookup(name Algorithm) (Variant, bool) {
	v, ok := registry.byName[name]
	return v, ok
}

// Variants lists every registered variant in registration order.
func Variants() []Variant {
	out := make([]Variant, len(registry.order))
	for i, name := range registry.order {
		out[i] = registry.byName[name]
	}
	return out
}

// Algorithms lists every registered algorithm name in registration order.
func Algorithms() []Algorithm {
	return append([]Algorithm(nil), registry.order...)
}

// AlgorithmsSorted lists every registered algorithm name alphabetically —
// stable output for help text and scripted enumeration.
func AlgorithmsSorted() []Algorithm {
	out := Algorithms()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Valid reports whether a is a registered algorithm.
func (a Algorithm) Valid() bool {
	_, ok := Lookup(a)
	return ok
}

// resolve maps the registered triple through the Config's compatibility
// overrides: the legacy Consensus=group mode turns the staged tree into
// group-local consensus, and QuantBits upgrades the exact sparse codec to
// its quantized variant — exactly the knobs the pre-registry engine
// honored.
func (v Variant) resolve(cfg Config) (ConsensusKind, SyncKind, exchange.Kind) {
	ck := v.Consensus
	if ck == ConsensusTree && cfg.Consensus == ConsensusGroup {
		ck = ConsensusGroupLocal
	}
	ek := v.Codec
	if ek == exchange.Sparse {
		switch cfg.QuantBits {
		case 8:
			ek = exchange.SparseQ8
		case 16:
			ek = exchange.SparseQ16
		}
	}
	return ck, v.Sync, ek
}

func init() {
	// The paper's six variants. Registration order is presentation order:
	// the contribution first, then the ablations, then the baselines.
	Register(Variant{
		Name: PSRAHGADMM, Consensus: ConsensusTree, Sync: SyncBSP, Codec: exchange.Sparse,
		Description: "the contribution: WLG-grouped hierarchical consensus ADMM, staged PSR aggregation tree (BSP, sparse exchange)",
	})
	Register(Variant{
		Name: PSRAADMM, Consensus: ConsensusFlat, Sync: SyncBSP, Codec: exchange.Sparse,
		Description: "flat ablation: one cluster-wide sparse PSR-Allreduce, no hierarchy (§4.2 before WLG)",
	})
	Register(Variant{
		Name: GRADMM, Consensus: ConsensusRing, Sync: SyncBSP, Codec: exchange.Sparse,
		Description: "baseline (ref. [9]): same BSP hierarchy, sparse Ring-Allreduce among all Leaders, no grouping",
	})
	Register(Variant{
		Name: ADMMLib, Consensus: ConsensusRing, Sync: SyncSSP, Codec: exchange.DenseF32,
		Description: "baseline (Xie & Lei): hierarchical dense fp32 Ring-Allreduce under node-granular SSP",
	})
	Register(Variant{
		Name: ADADMM, Consensus: ConsensusStar, Sync: SyncSSP, Codec: exchange.Dense,
		Description: "baseline (Zhang & Kwok): asynchronous master-worker consensus ADMM, partial barrier + bounded delay",
	})
	Register(Variant{
		Name: GCADMM, Consensus: ConsensusStar, Sync: SyncBSP, Codec: exchange.Dense,
		Description: "baseline: classic fully synchronous master-worker global consensus ADMM",
	})

	// Named reading of the paper's group-local consensus (also reachable
	// via Config.Consensus=group on psra-hgadmm).
	Register(Variant{
		Name: PSRAHGADMMGroup, Consensus: ConsensusGroupLocal, Sync: SyncBSP, Codec: exchange.Sparse,
		Description: "group-local reading of Algorithms 1-3: each WLG group computes z from its own members only",
	})

	// Compositions the monolithic switch could not express.
	Register(Variant{
		Name: PSRAHGADMMSSPQ8, Consensus: ConsensusTree, Sync: SyncSSP, Codec: exchange.SparseQ8,
		Description: "new composition: quantized (8-bit) hierarchical staged-tree aggregation under node-granular SSP",
	})
	Register(Variant{
		Name: PSRAADMMAsync, Consensus: ConsensusFlat, Sync: SyncAsync, Codec: exchange.Sparse,
		Description: "new composition: flat sparse PSR-Allreduce driven asynchronously (quorum of one, bounded delay)",
	})
	Register(Variant{
		Name: GRADMMSSP, Consensus: ConsensusRing, Sync: SyncSSP, Codec: exchange.Sparse,
		Description: "new composition: GR-ADMM's sparse Leader ring under ADMMLib's SSP barrier",
	})

	// Top-k error-feedback compositions: only the k largest-magnitude
	// coordinates of each contribution travel; dropped mass (and, for -q8,
	// quantization error) carries into the next round's contribution via
	// the per-rank exchange.State residual.
	Register(Variant{
		Name: PSRAHGADMMTopK, Consensus: ConsensusTree, Sync: SyncBSP, Codec: exchange.TopK,
		Description: "new composition: staged aggregation tree with top-k error-feedback sparsification (adaptive k)",
	})
	Register(Variant{
		Name: PSRAHGADMMTopKQ8, Consensus: ConsensusTree, Sync: SyncBSP, Codec: exchange.TopKQ8,
		Description: "new composition: top-k error-feedback selection composed with 8-bit quantized survivors",
	})
	Register(Variant{
		Name: PSRAADMMTopK, Consensus: ConsensusFlat, Sync: SyncBSP, Codec: exchange.TopK,
		Description: "new composition: flat sparse PSR-Allreduce over top-k error-feedback contributions",
	})

	// Block-sharded consensus state: no rank holds the full model. The
	// dimension is block-partitioned (ShardBlocks, default world size),
	// every rank stores only the blocks its shard's active columns touch,
	// and the z-update averages each block over its live subscribers.
	Register(Variant{
		Name: PSRAHGADMMSharded, Consensus: ConsensusTree, Sync: SyncBSP, Codec: exchange.Sparse, Sharded: true,
		Description: "block-sharded state: staged aggregation tree with per-block subscriber z-averaging; no rank holds the full model",
	})

	// Sharded state composed with the relaxed barriers — the compositions
	// the StateStore refactor unlocked: stale ranks' cached contributions
	// keep feeding their blocks' sums under the Max_delay bound, and each
	// block still averages over its live subscribers.
	Register(Variant{
		Name: PSRAHGADMMShardedSSP, Consensus: ConsensusTree, Sync: SyncSSP, Codec: exchange.Sparse, Sharded: true,
		Description: "new composition: block-sharded staged aggregation tree under node-granular SSP (partial barrier, bounded staleness)",
	})
	Register(Variant{
		Name: PSRAHGADMMShardedAsync, Consensus: ConsensusTree, Sync: SyncAsync, Codec: exchange.Sparse, Sharded: true,
		Description: "new composition: block-sharded staged aggregation tree driven asynchronously (quorum of one, bounded delay)",
	})

	// Byzantine-tolerant compositions: the Aggregator axis swaps the
	// consensus reduce statistic while everything else — codec, sync,
	// placement — stays the variant's. Mean-aggregator entries above are
	// untouched and bit-identical to their goldens.
	Register(Variant{
		Name: PSRAADMMRobust, Consensus: ConsensusFlat, Sync: SyncBSP, Codec: exchange.Sparse,
		Aggregator:  collective.AggTrimmedMeanName,
		Description: "robust composition: flat sparse PSR-Allreduce with per-coordinate trimmed-mean (tolerates TrimF Byzantine workers)",
	})
	Register(Variant{
		Name: PSRAHGADMMRobust, Consensus: ConsensusTree, Sync: SyncBSP, Codec: exchange.Sparse,
		Aggregator:  collective.AggTrimmedMeanName,
		Description: "robust composition: aggregation tree forced to a single merge, trimmed-mean over node partials (node-granular tolerance)",
	})
	Register(Variant{
		Name: GCADMMMedian, Consensus: ConsensusStar, Sync: SyncBSP, Codec: exchange.Dense,
		Aggregator:  collective.AggMedianName,
		Description: "robust baseline: master-worker star with coordinate-median aggregation",
	})
	Register(Variant{
		Name: PSRAADMMShardedRobust, Consensus: ConsensusFlat, Sync: SyncBSP, Codec: exchange.Sparse, Sharded: true,
		Aggregator:  collective.AggTrimmedMeanName,
		Description: "robust composition: block-sharded flat PSR with trimmed-mean over each block's live subscribers",
	})
}
