package core

import (
	"sort"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// The SSP (stale synchronous parallel) baselines. Both follow the same
// skeleton: per round, a partial barrier admits the Min_barrier fastest
// participants; laggards' *previous* contributions are reused (stale
// values), but no participant may fall more than Max_delay rounds behind —
// when it would, the round waits for it. The differences are granularity,
// topology, and representation:
//
//   - ADMMLib: staleness at node granularity (workers within a node are
//     BSP over the bus), aggregation by dense Ring-Allreduce among all
//     Leaders in single precision — the full parameter vector circulates
//     regardless of sparsity, which is why its communication volume is
//     flat in cluster size and why PSRA's sparse exchange undercuts it.
//   - AD-ADMM: staleness at worker granularity, aggregation at a master
//     whose links serialize all traffic, full-precision (x_i, y_i) up and
//     z down.

// pendingCompute is an in-flight x-update batch (one node for ADMMLib, one
// worker for AD-ADMM) whose result becomes visible at finish.
type pendingCompute struct {
	finish float64
	starts []float64 // per-member clock at compute start
	cals   []float64 // per-member compute time
}

// sspClock tracks a participant's barrier bookkeeping.
type sspClock struct {
	pending   *pendingCompute
	staleness int
}

// sspCutoff returns the partial-barrier time over participants: the K-th
// smallest pending finish, extended to cover every participant that has
// exhausted maxDelay.
func sspCutoff(clocks []sspClock, k, maxDelay int) float64 {
	finishes := make([]float64, 0, len(clocks))
	for i := range clocks {
		if clocks[i].pending != nil {
			finishes = append(finishes, clocks[i].pending.finish)
		}
	}
	sort.Float64s(finishes)
	if len(finishes) == 0 {
		return 0
	}
	if k > len(finishes) {
		k = len(finishes)
	}
	cutoff := finishes[k-1]
	for i := range clocks {
		if clocks[i].pending != nil && clocks[i].staleness >= maxDelay {
			cutoff = maxf(cutoff, clocks[i].pending.finish)
		}
	}
	return cutoff
}

// admmlibState carries the cross-round state of an ADMMLib run.
type admmlibState struct {
	clocks      []sspClock  // per node
	wCur        [][]float64 // per node: last contributed dense sum (fp32-rounded)
	pendingSum  [][]float64 // per node: in-flight contribution
	lastRingEnd float64
}

func newADMMLibState(nodes, dim int) *admmlibState {
	st := &admmlibState{
		clocks:     make([]sspClock, nodes),
		wCur:       make([][]float64, nodes),
		pendingSum: make([][]float64, nodes),
	}
	for n := 0; n < nodes; n++ {
		st.wCur[n] = make([]float64, dim)
	}
	return st
}

// runADMMLibRound executes one ADMMLib round.
func runADMMLibRound(cfg Config, ws []*worker, fab transport.Fabric, st *admmlibState, iter int) (iterTiming, error) {
	topo := cfg.Topo
	wpn := topo.WorkersPerNode
	dim := len(ws[0].zDense)
	var timing iterTiming
	denseMsgBytes := 4 + wire.DenseEntryBytes*dim/2 // fp32 on the bus too

	// Launch compute on every idle node.
	for n := range st.clocks {
		if st.clocks[n].pending != nil {
			continue
		}
		ranks := topo.WorkersOf(n)
		sub := make([]*worker, len(ranks))
		for i, r := range ranks {
			sub[i] = ws[r]
		}
		cals := parallelXUpdates(cfg, sub, iter)
		starts := make([]float64, len(ranks))
		sum := make([]float64, dim)
		ready := 0.0
		for i, w := range sub {
			starts[i] = w.clock
			ready = maxf(ready, w.clock+cals[i])
			w.wSparse(cfg.Rho).AddIntoDense(sum, 1)
		}
		quantizeF32(sum)
		// Intra reduce of dense fp32 vectors over the bus.
		tr := denseFanTrace(ranks, ranks[0], denseMsgBytes, true)
		timing.bytes += traceBytes(tr)
		st.pendingSum[n] = sum
		st.clocks[n].pending = &pendingCompute{
			finish: ready + cfg.Cost.TraceTime(topo, tr),
			starts: starts,
			cals:   cals,
		}
	}

	kNodes := (cfg.MinBarrier + wpn - 1) / wpn
	if kNodes < 1 {
		kNodes = 1
	}
	cutoff := sspCutoff(st.clocks, kNodes, cfg.MaxDelay)

	freshNodes := make([]int, 0, topo.Nodes)
	for n := range st.clocks {
		if p := st.clocks[n].pending; p != nil && p.finish <= cutoff {
			st.wCur[n] = st.pendingSum[n]
			freshNodes = append(freshNodes, n)
		}
	}

	// Dense single-precision Ring-Allreduce among ALL leaders (stale
	// leaders serve cached values).
	leaders := make([]int, topo.Nodes)
	for n := 0; n < topo.Nodes; n++ {
		leaders[n] = topo.WorkersOf(n)[0]
	}
	ringStart := maxf(cutoff, st.lastRingEnd)
	var commT float64
	var bigW []float64
	if topo.Nodes == 1 {
		bigW = append([]float64(nil), st.wCur[0]...)
	} else {
		var err error
		var tr collectiveTraceWrap
		bigW, tr.t, err = groupAllreduceDense(fab, leaders, int32(64+iter%2*8), st.wCur)
		if err != nil {
			return timing, err
		}
		scaled := scaleTraceBytes(tr.t, 1, 2) // fp32 on the wire
		commT = cfg.Cost.TraceTime(topo, scaled)
		timing.bytes += traceBytes(scaled)
	}
	ringEnd := ringStart + commT
	st.lastRingEnd = ringEnd
	quantizeF32(bigW)

	// Leaders hold W after the ring; they apply the z-update and fan the
	// (much sparser) z to their workers in single precision: 4-byte index
	// plus 4-byte value per entry.
	zDense := make([]float64, dim)
	solverZUpdate(zDense, bigW, cfg.Lambda, cfg.Rho, topo.Size())
	quantizeF32(zDense)
	zNNZ := countNonzero(zDense)
	zMsgBytes := 4 + 8*zNNZ

	calSum, commSum := 0.0, 0.0
	applied := 0
	for _, n := range freshNodes {
		p := st.clocks[n].pending
		ranks := topo.WorkersOf(n)
		bc := denseFanTrace(ranks, ranks[0], zMsgBytes, false)
		timing.bytes += traceBytes(bc)
		end := ringEnd + cfg.Cost.TraceTime(topo, bc)
		for i, r := range ranks {
			ws[r].applyZ(cfg, zDense, nil)
			calSum += p.cals[i]
			commSum += end - p.starts[i] - p.cals[i]
			ws[r].clock = end
			applied++
		}
		st.clocks[n].pending = nil
		st.clocks[n].staleness = 0
		st.pendingSum[n] = nil
	}
	for n := range st.clocks {
		if st.clocks[n].pending != nil {
			st.clocks[n].staleness++
		}
	}
	if applied > 0 {
		timing.cal = calSum / float64(applied)
		timing.comm = commSum / float64(applied)
	}
	return timing, nil
}

// collectiveTraceWrap keeps the multi-assignment call sites tidy.
type collectiveTraceWrap struct{ t traceAlias }

// adadmmState carries the cross-round state of an AD-ADMM run.
type adadmmState struct {
	clocks       []sspClock // per worker
	wCur         []*sparse.Vector
	pendingW     []*sparse.Vector
	masterFreeAt float64
}

func newADADMMState(workers, dim int) *adadmmState {
	st := &adadmmState{
		clocks:   make([]sspClock, workers),
		wCur:     make([]*sparse.Vector, workers),
		pendingW: make([]*sparse.Vector, workers),
	}
	for i := range st.wCur {
		st.wCur[i] = sparse.NewVector(dim, 0)
	}
	return st
}

// runADADMMRound executes one AD-ADMM round: worker-granular SSP against a
// master colocated with rank 0.
func runADADMMRound(cfg Config, ws []*worker, st *adadmmState, iter int) (iterTiming, error) {
	topo := cfg.Topo
	dim := len(ws[0].zDense)
	var timing iterTiming

	for i := range st.clocks {
		if st.clocks[i].pending != nil {
			continue
		}
		w := ws[i]
		cal := w.xUpdate(cfg, iter)
		st.pendingW[i] = w.wSparse(cfg.Rho)
		st.clocks[i].pending = &pendingCompute{
			finish: w.clock + cal,
			starts: []float64{w.clock},
			cals:   []float64{cal},
		}
	}

	cutoff := sspCutoff(st.clocks, cfg.MinBarrier, cfg.MaxDelay)

	fresh := make([]int, 0, len(ws))
	for i := range st.clocks {
		if p := st.clocks[i].pending; p != nil && p.finish <= cutoff {
			st.wCur[i] = st.pendingW[i]
			fresh = append(fresh, i)
		}
	}

	// The master aggregates EVERY worker's cached contribution (fresh or
	// stale) — Zhang & Kwok's async consensus update — then returns z to
	// the fresh workers. Only fresh workers pay wire time this round; the
	// master's serialized links are what make this scale poorly.
	master := 0
	gatherStart := maxf(cutoff, st.masterFreeAt)
	tr := starGatherTrace(master, fresh, dim)
	commT := cfg.Cost.TraceTime(topo, tr)
	timing.bytes += traceBytes(tr)
	end := gatherStart + commT
	st.masterFreeAt = end

	acc := sparse.NewAccumulator(dim)
	for _, wc := range st.wCur {
		acc.Add(wc)
	}
	zDense := make([]float64, dim)
	solverZUpdate(zDense, acc.Sum().ToDense(), cfg.Lambda, cfg.Rho, topo.Size())

	calSum, commSum := 0.0, 0.0
	for _, i := range fresh {
		p := st.clocks[i].pending
		ws[i].applyZ(cfg, zDense, nil)
		calSum += p.cals[0]
		commSum += end - p.starts[0] - p.cals[0]
		ws[i].clock = end
		st.clocks[i].pending = nil
		st.clocks[i].staleness = 0
		st.pendingW[i] = nil
	}
	for i := range st.clocks {
		if st.clocks[i].pending != nil {
			st.clocks[i].staleness++
		}
	}
	if len(fresh) > 0 {
		timing.cal = calSum / float64(len(fresh))
		timing.comm = commSum / float64(len(fresh))
	}
	return timing, nil
}
