package collective

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"psrahgadmm/internal/shard"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

// shardedInputs builds one sparse vector per member with support restricted
// to its plan subscription.
func shardedInputs(r *rand.Rand, plan *shard.Plan, density float64) []*sparse.Vector {
	vs := make([]*sparse.Vector, plan.Members())
	for i := range vs {
		vs[i] = sparse.NewVector(plan.Part.Dim, 0)
		for _, b := range plan.Subs[i] {
			c := plan.Part.Chunk(int(b))
			for j := c.Lo; j < c.Hi; j++ {
				if r.Float64() < density {
					vs[i].Append(int32(j), r.NormFloat64())
				}
			}
		}
	}
	return vs
}

// shardedWant computes each member's expected output: per subscribed block,
// the sum of all subscribers' contributions, in member order (the reduction
// order the collective guarantees).
func shardedWant(plan *shard.Plan, vs []*sparse.Vector) [][]float64 {
	dim := plan.Part.Dim
	blockSum := make([]float64, dim)
	for b := 0; b < plan.Part.Blocks; b++ {
		c := plan.Part.Chunk(b)
		for i, v := range vs {
			if !subscribes(plan, i, b) {
				continue
			}
			from, to := v.Range(c.Lo, c.Hi)
			for k := from; k < to; k++ {
				blockSum[v.Index[k]] += v.Value[k]
			}
		}
	}
	want := make([][]float64, len(vs))
	for i := range vs {
		want[i] = make([]float64, dim)
		for _, b := range plan.Subs[i] {
			c := plan.Part.Chunk(int(b))
			copy(want[i][c.Lo:c.Hi], blockSum[c.Lo:c.Hi])
		}
	}
	return want
}

func subscribes(plan *shard.Plan, i, b int) bool {
	for _, s := range plan.Subs[i] {
		if int(s) == b {
			return true
		}
	}
	return false
}

// randomPlan builds a plan where every member subscribes to each block with
// probability q, forced non-empty, and every block keeps at least one
// subscriber so no coordinate silently vanishes.
func randomPlan(r *rand.Rand, dim, blocks, p int, q float64) *shard.Plan {
	part := shard.NewPartition(dim, blocks)
	subs := make([][]int32, p)
	for i := range subs {
		for b := 0; b < part.Blocks; b++ {
			if r.Float64() < q {
				subs[i] = append(subs[i], int32(b))
			}
		}
		if len(subs[i]) == 0 {
			subs[i] = append(subs[i], int32(r.Intn(part.Blocks)))
		}
	}
	for b := 0; b < part.Blocks; b++ {
		covered := false
		for i := range subs {
			if subscribes(&shard.Plan{Part: part, Subs: subs}, i, b) {
				covered = true
				break
			}
		}
		if !covered {
			i := r.Intn(p)
			at := 0
			for at < len(subs[i]) && int(subs[i][at]) < b {
				at++
			}
			subs[i] = append(subs[i], 0)
			copy(subs[i][at+1:], subs[i][at:])
			subs[i][at] = int32(b)
		}
	}
	return &shard.Plan{Part: part, Subs: subs}
}

func TestShardAllreduceSparsePartial(t *testing.T) {
	for _, tc := range []struct {
		p, dim, blocks int
		q              float64
	}{
		{1, 30, 4, 0.5},
		{2, 40, 2, 0.7},
		{3, 50, 7, 0.5},
		{4, 64, 16, 0.3},
		{5, 128, 64, 0.2},
		{6, 97, 13, 0.4},
	} {
		t.Run(fmt.Sprintf("p=%d/dim=%d/B=%d", tc.p, tc.dim, tc.blocks), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(tc.p*10000 + tc.dim)))
			plan := randomPlan(r, tc.dim, tc.blocks, tc.p, tc.q)
			vs := shardedInputs(r, plan, 0.6)
			want := shardedWant(plan, vs)
			g := WorldGroup(tc.p)
			var mu sync.Mutex
			results := make([][]float64, tc.p)
			runRanks(t, tc.p, func(ep transport.Endpoint) error {
				var ws Workspace
				out := new(sparse.Vector)
				if _, err := ws.ShardAllreduceSparse(ep, g, 300, plan, vs[ep.Rank()], out); err != nil {
					return err
				}
				if err := out.Check(); err != nil {
					return err
				}
				mu.Lock()
				results[ep.Rank()] = out.ToDense()
				mu.Unlock()
				return nil
			})
			for rk, got := range results {
				if !vec.WithinTol(got, want[rk], 1e-12) {
					t.Fatalf("rank %d sharded result wrong", rk)
				}
			}
		})
	}
}

// TestShardAllreduceSparseMatchesPSR pins the bit-identity escape hatch:
// under full subscription with Blocks == p the sharded schedule must
// reproduce PSRAllreduceSparse exactly — same result bits, same per-step
// traced byte counts.
func TestShardAllreduceSparseMatchesPSR(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		for _, dim := range []int{8, 57, 256} {
			t.Run(fmt.Sprintf("p=%d/dim=%d", p, dim), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(p*100 + dim)))
				vs, _ := sparseInputs(r, p, dim, 0.4)
				plan := shard.FullPlan(shard.NewPartition(dim, p), p)
				g := WorldGroup(p)
				var mu sync.Mutex
				gotShard := make([][]float64, p)
				shardBytes := make([]int, p)
				runRanks(t, p, func(ep transport.Endpoint) error {
					var ws Workspace
					out := new(sparse.Vector)
					tr, err := ws.ShardAllreduceSparse(ep, g, 300, plan, vs[ep.Rank()], out)
					if err != nil {
						return err
					}
					mu.Lock()
					gotShard[ep.Rank()] = out.ToDense()
					shardBytes[ep.Rank()] = tr.TotalBytes()
					mu.Unlock()
					return nil
				})
				gotPSR := make([][]float64, p)
				psrBytes := make([]int, p)
				runRanks(t, p, func(ep transport.Endpoint) error {
					var ws Workspace
					out := new(sparse.Vector)
					tr, err := ws.PSRAllreduceSparse(ep, g, 300, vs[ep.Rank()], out)
					if err != nil {
						return err
					}
					mu.Lock()
					gotPSR[ep.Rank()] = out.ToDense()
					psrBytes[ep.Rank()] = tr.TotalBytes()
					mu.Unlock()
					return nil
				})
				for rk := range gotShard {
					if !vec.Equal(gotShard[rk], gotPSR[rk]) {
						t.Fatalf("rank %d: sharded result diverges bitwise from PSR", rk)
					}
					if shardBytes[rk] != psrBytes[rk] {
						t.Fatalf("rank %d: sharded trace %dB, PSR %dB", rk, shardBytes[rk], psrBytes[rk])
					}
				}
			})
		}
	}
}

// TestShardAllreduceSparseIgnoresUnsubscribed: support outside the sender's
// subscription must not leak into anyone's totals, including the owner's
// own stray entries on blocks it owns but does not subscribe to.
func TestShardAllreduceSparseIgnoresUnsubscribed(t *testing.T) {
	part := shard.NewPartition(12, 4) // blocks of 3; owner of b is b%3
	plan := &shard.Plan{Part: part, Subs: [][]int32{{0, 1}, {1, 2}, {2, 3}}}
	p := 3
	vs := make([]*sparse.Vector, p)
	for i := range vs {
		vs[i] = sparse.NewVector(12, 0)
		for j := 0; j < 12; j++ {
			vs[i].Append(int32(j), 1) // full support: everything outside Subs[i] is noise
		}
	}
	want := shardedWant(plan, restrictAll(plan, vs))
	g := WorldGroup(p)
	var mu sync.Mutex
	results := make([][]float64, p)
	runRanks(t, p, func(ep transport.Endpoint) error {
		var ws Workspace
		out := new(sparse.Vector)
		if _, err := ws.ShardAllreduceSparse(ep, g, 300, plan, vs[ep.Rank()], out); err != nil {
			return err
		}
		mu.Lock()
		results[ep.Rank()] = out.ToDense()
		mu.Unlock()
		return nil
	})
	for rk, got := range results {
		if !vec.WithinTol(got, want[rk], 0) {
			t.Fatalf("rank %d: unsubscribed support leaked: got %v want %v", rk, got, want[rk])
		}
	}
}

// restrictAll drops every entry outside each member's subscription.
func restrictAll(plan *shard.Plan, vs []*sparse.Vector) []*sparse.Vector {
	out := make([]*sparse.Vector, len(vs))
	for i, v := range vs {
		out[i] = sparse.NewVector(v.Dim, 0)
		for _, b := range plan.Subs[i] {
			c := plan.Part.Chunk(int(b))
			from, to := v.Range(c.Lo, c.Hi)
			for k := from; k < to; k++ {
				out[i].Append(v.Index[k], v.Value[k])
			}
		}
	}
	return out
}
