package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"psrahgadmm/internal/sparse"
)

// Transformations applied to datasets before training. The published
// corpora behind Table 1 ship preprocessed (news20.binary and webspam are
// L2 row-normalized), so the library provides the same preprocessing for
// raw LIBSVM inputs.

// NormalizeRowsL2 scales every sample to unit Euclidean norm, in place.
// Zero rows are left untouched. This is the preprocessing the paper's
// corpora ship with, and it conditions the logistic subproblems (row norms
// bound the Hessian's diagonal).
func (d *Dataset) NormalizeRowsL2() {
	m := d.X
	for r := 0; r < m.NRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		var sq float64
		for k := lo; k < hi; k++ {
			sq += m.Val[k] * m.Val[k]
		}
		if sq == 0 {
			continue
		}
		inv := 1 / math.Sqrt(sq)
		for k := lo; k < hi; k++ {
			m.Val[k] *= inv
		}
	}
}

// MaxAbsColumnScale divides every column by its maximum absolute value
// (computed over this dataset), returning the per-column scales so a test
// split can be scaled identically. Columns never touched keep scale 1.
func (d *Dataset) MaxAbsColumnScale() []float64 {
	m := d.X
	maxima := make([]float64, d.Dim())
	for k, c := range m.ColIdx {
		if a := math.Abs(m.Val[k]); a > maxima[c] {
			maxima[c] = a
		}
	}
	scales := make([]float64, d.Dim())
	for i, mx := range maxima {
		if mx > 0 {
			scales[i] = mx
		} else {
			scales[i] = 1
		}
	}
	d.ApplyColumnScale(scales)
	return scales
}

// ApplyColumnScale divides each column c by scales[c], in place (used to
// apply a training split's scales to its test split).
func (d *Dataset) ApplyColumnScale(scales []float64) {
	if len(scales) != d.Dim() {
		panic("dataset: ApplyColumnScale dimension mismatch")
	}
	m := d.X
	for k, c := range m.ColIdx {
		m.Val[k] /= scales[c]
	}
}

// Shuffle permutes the sample order deterministically from seed. Row
// sharding is contiguous, so shuffling first removes any ordering bias in
// how samples were collected (class-sorted files would otherwise give
// workers one-class shards).
func (d *Dataset) Shuffle(seed int64) {
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(d.Rows())
	d.Reorder(perm)
}

// Reorder rebuilds the dataset with rows in the given order; perm must be
// a permutation of [0, Rows).
func (d *Dataset) Reorder(perm []int) {
	if len(perm) != d.Rows() {
		panic("dataset: Reorder permutation length mismatch")
	}
	src := d.X
	out := NewLike(d.Name, src.NCols, src.NNZ())
	labels := make([]float64, 0, len(perm))
	seen := make([]bool, len(perm))
	for _, r := range perm {
		if r < 0 || r >= d.Rows() || seen[r] {
			panic(fmt.Sprintf("dataset: Reorder invalid permutation entry %d", r))
		}
		seen[r] = true
		cols, vals := src.Row(r)
		out.X.AppendRow(cols, vals)
		labels = append(labels, d.Labels[r])
	}
	d.X = out.X
	d.Labels = labels
}

// NewLike returns an empty dataset with the given name, dimension and
// nonzero capacity.
func NewLike(name string, dim, nnz int) *Dataset {
	return &Dataset{
		Name:   name,
		X:      sparse.NewCSR(0, dim, nnz),
		Labels: nil,
	}
}

// StratifiedSplit partitions the dataset into train/test with the given
// test fraction, preserving the positive/negative label ratio in both
// splits. Deterministic from seed.
func (d *Dataset) StratifiedSplit(testFrac float64, seed int64) (train, test *Dataset, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: test fraction %v out of (0,1)", testFrac)
	}
	r := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, l := range d.Labels {
		if l > 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	r.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	r.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	take := func(idx []int) (tr, te []int) {
		cut := int(float64(len(idx)) * testFrac)
		return idx[cut:], idx[:cut]
	}
	posTr, posTe := take(pos)
	negTr, negTe := take(neg)

	build := func(name string, rows []int) *Dataset {
		out := NewLike(name, d.Dim(), 0)
		for _, row := range rows {
			cols, vals := d.X.Row(row)
			out.X.AppendRow(cols, vals)
			out.Labels = append(out.Labels, d.Labels[row])
		}
		return out
	}
	trainRows := append(append([]int(nil), posTr...), negTr...)
	testRows := append(append([]int(nil), posTe...), negTe...)
	return build(d.Name+"/train", trainRows), build(d.Name+"/test", testRows), nil
}
