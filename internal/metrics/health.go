package metrics

import "sync/atomic"

// Degraded-mode observability: the engine and the WLG runtime expose the
// membership layer's state through these primitives — a live-worker gauge,
// a membership-epoch gauge, and a per-rank PeerDown event counter — and
// surface the same numbers in every IterStat so a history records exactly
// when the world shrank.

// Gauge is a settable instantaneous value, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Get returns the gauge's current value.
func (g *Gauge) Get() int64 { return g.v.Load() }

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Inc adds one event.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n events.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Get returns the total.
func (c *Counter) Get() int64 { return c.v.Load() }

// Health aggregates one world's degraded-mode metrics.
type Health struct {
	// LiveWorkers is the current live rank count.
	LiveWorkers Gauge
	// Epoch is the current membership epoch (deaths observed).
	Epoch Gauge
	// ResidentBytes is the per-rank consensus-state footprint (max over
	// live ranks) — the number the block-sharded engine exists to shrink.
	ResidentBytes Gauge
	// WatchdogTrips counts divergence detections (NaN/Inf iterates,
	// residual or objective explosions). Each trip either rolled back to a
	// checkpoint (Rollbacks increments too) or aborted the run.
	WatchdogTrips Counter
	// Rollbacks counts checkpoint auto-rollbacks performed after watchdog
	// trips.
	Rollbacks Counter
	// CorruptRounds counts consensus rounds retried because a wire frame
	// failed its integrity check mid-collective.
	CorruptRounds Counter
	peerDowns     []Counter
}

// NewHealth returns a Health for ranks 0..world-1 with LiveWorkers
// initialized to the full world.
func NewHealth(world int) *Health {
	h := &Health{peerDowns: make([]Counter, world)}
	h.LiveWorkers.Set(int64(world))
	return h
}

// ObserveDown records one PeerDown event for rank — wired to
// membership.Tracker.OnDown.
func (h *Health) ObserveDown(rank int) {
	if rank >= 0 && rank < len(h.peerDowns) {
		h.peerDowns[rank].Inc()
	}
}

// PeerDowns returns the event count recorded for one rank.
func (h *Health) PeerDowns(rank int) int64 {
	if rank < 0 || rank >= len(h.peerDowns) {
		return 0
	}
	return h.peerDowns[rank].Get()
}

// TotalPeerDowns sums the per-rank counters.
func (h *Health) TotalPeerDowns() int64 {
	var n int64
	for i := range h.peerDowns {
		n += h.peerDowns[i].Get()
	}
	return n
}
