package collective

import (
	"fmt"

	"psrahgadmm/internal/shard"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// ShardAllreduceSparse is the shard-aware form of PSRAllreduceSparse: the
// model is split into plan.Part.Blocks contiguous blocks, block b is owned
// by the member at group position b % p, and member i holds (and cares
// about) only the blocks in plan.Subs[i]. Each member sends every owner
// exactly one global-coordinate message carrying its contribution to the
// blocks they share, owners reduce per block in member order, and each
// member receives back only its subscribed blocks' totals:
//
//	Scatter:  i → j   carries v restricted to Subs[i] ∩ Owned[j]
//	Gather:   j → i   carries the reduced  Subs[i] ∩ Owned[j]
//
// A pair exchanges messages iff Subs[i] ∩ Owned[j] is statically non-empty
// — decided by the plan alone, never by values, so message counts are
// deterministic and a rank that happens to contribute zeros still
// participates. out receives the reduced vector restricted to Subs[me]
// (dimension plan.Part.Dim, coordinates global); entries of v outside
// Subs[me] are ignored. out must not alias v.
//
// Under full subscription with Blocks == p the schedule, payloads, traces,
// and float association reduce exactly to PSRAllreduceSparse — the sharded
// engine's bit-identity escape hatch. With Blocks > p each owner holds
// several blocks but still reduces each one independently in member order.
func (ws *Workspace) ShardAllreduceSparse(ep transport.Endpoint, g Group, tagBase int32, plan *shard.Plan, v, out *sparse.Vector) (Trace, error) {
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	p := g.Size()
	if plan.Members() != p {
		return Trace{}, fmt.Errorf("collective: shard plan has %d members, group %d", plan.Members(), p)
	}
	part := plan.Part
	if v.Dim != part.Dim {
		return Trace{}, fmt.Errorf("collective: shard input dim %d, want %d", v.Dim, part.Dim)
	}
	tr := Trace{Steps: 2, Events: ws.events[:0]}
	if p == 1 {
		out.ReuseFrom(v)
		return tr, nil
	}
	sync := transport.SendsNonBlocking(ep)
	ws.ensureSparse(p)
	owned := (part.Blocks + p - 1 - me) / p // |{b : b % p == me}|
	ws.ensureShard(p, owned)
	subsMe := plan.Subs[me]

	// Scatter-Reduce: one message per owner I share blocks with, carrying my
	// contribution to those blocks in global coordinates. ws.own[j] is the
	// outgoing buffer to owner j — once sent it is not rewritten until the
	// next call, by which point owner j has folded it (it cannot have sent
	// my gather reply, which this member consumed, before doing so).
	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		msg := ws.own[j]
		msg.Reset(part.Dim)
		send := false
		for _, b32 := range subsMe {
			b := int(b32)
			if plan.OwnerPos(b) != j {
				continue
			}
			send = true
			c := part.Chunk(b)
			from, to := v.Range(c.Lo, c.Hi)
			msg.Index = append(msg.Index, v.Index[from:to]...)
			msg.Value = append(msg.Value, v.Value[from:to]...)
		}
		if !send {
			continue
		}
		m := wire.SparseMsg(tagBase, msg)
		tr.add(0, ep.Rank(), g.Ranks[j], wire.PayloadBytes(m))
		if err := ws.send(ep, sync, g.Ranks[j], m); err != nil {
			return tr, err
		}
	}

	// Expected scatter arrivals: members whose subscription reaches a block
	// I own — a static property of the plan.
	arrivals := ws.arrS
	expect := 0
	for i := 0; i < p; i++ {
		if i != me && planPairs(plan, i, me) {
			expect++
		}
	}
	for n := 0; n < expect; n++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return tr, err
		}
		sv, err := sparsePayload(in)
		if err != nil {
			return tr, err
		}
		if sv.Dim != part.Dim {
			return tr, fmt.Errorf("collective: shard scatter dim %d, want %d", sv.Dim, part.Dim)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil || !planPairs(plan, src, me) {
			return tr, fmt.Errorf("collective: shard scatter unexpected sender %d", in.From)
		}
		arrivals[src] = sv
	}
	if err := ws.drainSends(); err != nil {
		return tr, err
	}

	// Reduce each owned block independently: block-width accumulator, member
	// order (me contributes from v at position me), so float association
	// matches PSRAllreduceSparse's per-chunk reduction bit for bit.
	subCur := 0
	for bi := 0; bi < owned; bi++ {
		b := me + bi*p
		c := part.Chunk(b)
		for subCur < len(subsMe) && int(subsMe[subCur]) < b {
			subCur++
		}
		mine := subCur < len(subsMe) && int(subsMe[subCur]) == b
		ws.acc.Reset(c.Len())
		for i := 0; i < p; i++ {
			src := v
			if i != me {
				src = arrivals[i]
				if src == nil {
					continue
				}
			} else if !mine {
				// My own entries outside my subscription are ignored, like
				// every other member's.
				continue
			}
			from, to := src.Range(c.Lo, c.Hi)
			ws.acc.AddRange(src, from, to, int32(c.Lo))
		}
		ws.shRed[bi] = ws.acc.SumInto(ws.shRed[bi])
	}

	// Allgather: send each subscriber of my blocks its reduced slices, again
	// one global-coordinate message per pair. ws.shOut[i] is the outgoing
	// buffer to member i, distinct from the scatter buffers so neither phase
	// rewrites a payload the other may still alias on zero-copy fabrics.
	for i := 0; i < p; i++ {
		if i == me || !planPairs(plan, i, me) {
			continue
		}
		msg := ws.shOut[i]
		msg.Reset(part.Dim)
		for _, b32 := range plan.Subs[i] {
			b := int(b32)
			if plan.OwnerPos(b) != me {
				continue
			}
			c := part.Chunk(b)
			red := ws.shRed[(b-me)/p]
			for k, idx := range red.Index {
				msg.Index = append(msg.Index, idx+int32(c.Lo))
				msg.Value = append(msg.Value, red.Value[k])
			}
		}
		m := wire.SparseMsg(tagBase+1, msg)
		tr.add(1, ep.Rank(), g.Ranks[i], wire.PayloadBytes(m))
		if err := ws.send(ep, sync, g.Ranks[i], m); err != nil {
			return tr, err
		}
	}
	gathered := ws.shArr
	expect = 0
	for j := 0; j < p; j++ {
		if j != me && planPairs(plan, me, j) {
			expect++
		}
	}
	for n := 0; n < expect; n++ {
		in, err := ep.Recv(transport.AnySource, tagBase+1)
		if err != nil {
			return tr, err
		}
		sv, err := sparsePayload(in)
		if err != nil {
			return tr, err
		}
		if sv.Dim != part.Dim {
			return tr, fmt.Errorf("collective: shard gather dim %d, want %d", sv.Dim, part.Dim)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || gathered[src] != nil || !planPairs(plan, me, src) {
			return tr, fmt.Errorf("collective: shard gather unexpected sender %d", in.From)
		}
		gathered[src] = sv
	}
	if err := ws.drainSends(); err != nil {
		return tr, err
	}

	// Assemble my subscribed blocks in ascending block order: owned blocks
	// from my own reductions, the rest sliced out of the owners' replies.
	out.Reset(part.Dim)
	for _, b32 := range subsMe {
		b := int(b32)
		c := part.Chunk(b)
		if j := plan.OwnerPos(b); j == me {
			red := ws.shRed[(b-me)/p]
			for k, idx := range red.Index {
				out.Index = append(out.Index, idx+int32(c.Lo))
				out.Value = append(out.Value, red.Value[k])
			}
		} else {
			src := gathered[j]
			from, to := src.Range(c.Lo, c.Hi)
			out.Index = append(out.Index, src.Index[from:to]...)
			out.Value = append(out.Value, src.Value[from:to]...)
		}
	}
	ws.events = tr.Events
	return tr, nil
}

// planPairs reports whether member i's subscription reaches any block
// owned by member j — the static condition under which the pair exchanges
// a scatter (i→j) and a gather (j→i) message.
func planPairs(plan *shard.Plan, i, j int) bool {
	for _, b := range plan.Subs[i] {
		if plan.OwnerPos(int(b)) == j {
			return true
		}
	}
	return false
}

// ensureShard sizes the sharded-collective scratch: gather arrivals and
// per-destination outgoing buffers (p-wide) plus one reduced-block slot per
// owned block.
func (ws *Workspace) ensureShard(p, owned int) {
	if cap(ws.shOut) < p {
		out := make([]*sparse.Vector, p)
		copy(out, ws.shOut)
		ws.shOut = out
		ws.shArr = make([]*sparse.Vector, p)
	}
	ws.shOut = ws.shOut[:p]
	ws.shArr = ws.shArr[:p]
	for i := range ws.shOut {
		if ws.shOut[i] == nil {
			ws.shOut[i] = new(sparse.Vector)
		}
		ws.shArr[i] = nil
	}
	if cap(ws.shRed) < owned {
		red := make([]*sparse.Vector, owned)
		copy(red, ws.shRed)
		ws.shRed = red
	}
	ws.shRed = ws.shRed[:owned]
}
