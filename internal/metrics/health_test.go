package metrics

import (
	"sync"
	"testing"
)

func TestHealthCounters(t *testing.T) {
	h := NewHealth(4)
	if h.LiveWorkers.Get() != 4 || h.Epoch.Get() != 0 {
		t.Fatalf("fresh health: live %d epoch %d", h.LiveWorkers.Get(), h.Epoch.Get())
	}
	h.ObserveDown(2)
	h.ObserveDown(2)
	h.ObserveDown(0)
	h.ObserveDown(99) // out of range: ignored
	if h.PeerDowns(2) != 2 || h.PeerDowns(0) != 1 || h.PeerDowns(1) != 0 {
		t.Fatalf("per-rank counters: %d %d %d", h.PeerDowns(2), h.PeerDowns(0), h.PeerDowns(1))
	}
	if h.TotalPeerDowns() != 3 {
		t.Fatalf("total %d", h.TotalPeerDowns())
	}
	h.LiveWorkers.Set(2)
	h.Epoch.Set(2)
	if h.LiveWorkers.Get() != 2 || h.Epoch.Get() != 2 {
		t.Fatal("gauges")
	}
}

func TestHealthConcurrent(t *testing.T) {
	h := NewHealth(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h.ObserveDown(r)
			}
		}(i)
	}
	wg.Wait()
	if h.TotalPeerDowns() != 800 {
		t.Fatalf("total %d", h.TotalPeerDowns())
	}
}
