// Divergence detection and checkpoint rollback for the WLG runtime.
//
// The runtime is algorithm-agnostic, so its watchdog watches what it can
// see: the contribution each worker hands it and the aggregate it hands
// back. Both are scanned for NaN/Inf, and their infinity norms feed the
// shared watchdog.Monitor's sliding-window explosion test — a contribution
// whose magnitude jumps four orders of magnitude past the recent floor is
// diverging even if no value is (yet) non-finite. Because every member of
// a group applies the SAME aggregate, one poisoned contribution trips
// every rank of the group at the same iteration: detection is coordinated
// by the data itself, no extra protocol needed.
//
// A trip is a typed *DivergedError returned BEFORE ApplyW, so poisoned
// values never enter algorithm state (and, on the checkpointing path,
// never get persisted). Under Run's fail-fast semantics the first trip
// tears the whole world down at that iteration boundary — which is exactly
// the coordination rollback needs. RunWithRecovery drives the
// detect → rollback → resume ladder on top: restore every rank's state
// from the last good checkpoint, relaunch the world with
// Config.StartIter at the checkpoint boundary (the resume path that
// already exists for restarts), and abort with the trip once the bounded
// rollback budget is spent. The multi-process analog is exit-code driven:
// psra-worker exits with a dedicated code on divergence and orchestration
// relaunches with -start-iter.
package wlg

import (
	"errors"
	"fmt"

	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/watchdog"
)

// DivergedError reports a watchdog trip on one rank: which rank, at which
// iteration, and why. errors.Is(err, watchdog.ErrDiverged) matches.
type DivergedError struct {
	Rank   int
	Iter   int
	Reason string
}

func (e *DivergedError) Error() string {
	return fmt.Sprintf("wlg: rank %d diverged at iteration %d: %s", e.Rank, e.Iter, e.Reason)
}

func (e *DivergedError) Unwrap() error { return watchdog.ErrDiverged }

// wlgWatch is one worker's divergence monitor. The zero-ish nil-Monitor
// state (watchdog disabled) makes every method a no-op, so the worker
// loops carry no branches.
type wlgWatch struct {
	mon  *watchdog.Monitor
	rank int
	// ownInf is the contribution's inf-norm, buffered so one Observe per
	// iteration sees both sides of the exchange.
	ownInf float64
}

func newWatch(cfg Config, rank int) *wlgWatch {
	mon := watchdog.New(cfg.Watchdog)
	if mon == nil {
		return nil
	}
	return &wlgWatch{mon: mon, rank: rank}
}

// checkOwn vets this rank's raw contribution before it enters any codec or
// collective — a NaN absorbed into a top-k error-feedback residual would
// poison every later round, so the scan must run on the ComputeW output.
func (w *wlgWatch) checkOwn(iter int, own []float64) error {
	if w == nil {
		return nil
	}
	if at := watchdog.ScanNonFinite([]string{"w"}, own); at != "" {
		return &DivergedError{Rank: w.rank, Iter: iter, Reason: "non-finite contribution: " + at}
	}
	w.ownInf = vec.NrmInf(own)
	return nil
}

// checkAgg vets the received aggregate before ApplyW and feeds the
// window: contribution and aggregate norms play the monitor's primal/dual
// roles (no objective at this layer).
func (w *wlgWatch) checkAgg(iter int, agg []float64) error {
	if w == nil {
		return nil
	}
	if at := watchdog.ScanNonFinite([]string{"W"}, agg); at != "" {
		return &DivergedError{Rank: w.rank, Iter: iter, Reason: "non-finite aggregate: " + at}
	}
	aggInf := vec.NrmInf(agg)
	if w.ownInf == 0 && aggInf == 0 {
		// A zero exchange (the cold-start iterate, a fully-converged run)
		// carries no magnitude signal: pushing it would zero the window
		// floor and make every later healthy value an "explosion".
		return nil
	}
	if trip := w.mon.Observe(iter, w.ownInf, aggInf, 0, false); trip != nil {
		return &DivergedError{Rank: w.rank, Iter: iter, Reason: trip.Reason}
	}
	return nil
}

// RecoveryOptions parameterizes RunWithRecovery's rollback ladder.
type RecoveryOptions struct {
	// Rollback is invoked after a divergence teardown. It must restore
	// every rank's algorithm state to a consistent iteration boundary (the
	// last good checkpoint) and return the iteration the relaunched world
	// resumes from. ok=false means there is nothing to roll back to, which
	// turns the trip into the run's error.
	Rollback func(trip *DivergedError) (startIter int, ok bool, err error)
	// MaxRollbacks bounds the ladder; 0 means the watchdog config default.
	MaxRollbacks int
}

// RunWithRecovery is Run with the divergence ladder on top: it launches a
// full world via mkFab (a fresh fabric per attempt — the previous one was
// torn down by the fail-fast abort), and when the run dies of a
// *DivergedError it rolls back through opts.Rollback and relaunches with
// StartIter at the restored boundary, up to the rollback budget. Every
// other failure, and a trip past the budget, is returned as-is. The
// returned RunInfo records how many rollbacks the run survived.
func RunWithRecovery(mkFab func() (transport.Fabric, error), cfg Config, funcs func(rank int) WorkerFuncs, opts RecoveryOptions) (*RunInfo, error) {
	maxRB := opts.MaxRollbacks
	if maxRB <= 0 {
		maxRB = cfg.Watchdog.Fill().MaxRollbacks
	}
	rollbacks := 0
	for {
		fab, err := mkFab()
		if err != nil {
			return nil, fmt.Errorf("wlg: recovery fabric: %w", err)
		}
		info, err := RunWithInfo(fab, cfg, funcs)
		fab.Close()
		if err == nil {
			info.Rollbacks = rollbacks
			return info, nil
		}
		var trip *DivergedError
		if !errors.As(err, &trip) {
			return nil, err
		}
		if rollbacks >= maxRB {
			return nil, fmt.Errorf("wlg: giving up after %d rollbacks: %w", rollbacks, err)
		}
		if opts.Rollback == nil {
			return nil, fmt.Errorf("wlg: no rollback handler: %w", err)
		}
		start, ok, rerr := opts.Rollback(trip)
		if rerr != nil {
			return nil, fmt.Errorf("wlg: rollback after %v: %w", err, rerr)
		}
		if !ok {
			return nil, fmt.Errorf("wlg: no checkpoint to roll back to: %w", err)
		}
		if start < 0 || start > trip.Iter {
			return nil, fmt.Errorf("wlg: rollback returned boundary %d outside [0, %d]", start, trip.Iter)
		}
		rollbacks++
		cfg.StartIter = start
	}
}
