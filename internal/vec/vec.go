// Package vec provides the dense float64 vector kernels used throughout the
// PSRA-HGADMM library: BLAS-level-1 style operations (axpy, dot, scale,
// norms), numerically careful summation, and small helpers for cloning and
// zeroing. All functions operate on plain []float64 so callers can slice
// blocks out of larger buffers without copies, which the collective
// communication layer relies on heavily.
//
// Unless stated otherwise, functions panic when the input lengths disagree;
// a length mismatch is always a programming error in this codebase, never a
// runtime condition to recover from.
package vec

import "math"

// Dot returns the inner product <a, b>.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vec: Dot length mismatch")
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Axpy computes y += alpha * x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("vec: Axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// AxpyTo computes dst = y + alpha*x without modifying the inputs.
// dst may alias y or x.
func AxpyTo(dst []float64, alpha float64, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("vec: AxpyTo length mismatch")
	}
	for i := range dst {
		dst[i] = y[i] + alpha*x[i]
	}
}

// Scale computes x *= alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// ScaleTo computes dst = alpha * x. dst may alias x.
func ScaleTo(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("vec: ScaleTo length mismatch")
	}
	for i, xv := range x {
		dst[i] = alpha * xv
	}
}

// Add computes dst = a + b elementwise. dst may alias either input.
func Add(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise. dst may alias either input.
func Sub(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// AddInto accumulates src into dst: dst += src.
func AddInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic("vec: AddInto length mismatch")
	}
	for i, sv := range src {
		dst[i] += sv
	}
}

// Nrm2 returns the Euclidean norm ||x||_2, guarding against overflow the
// same way the reference BLAS dnrm2 does (scaling by the running maximum).
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Nrm2Sq returns ||x||_2^2 via direct accumulation. Faster than Nrm2 and
// sufficient where the squared norm is what the formula needs.
func Nrm2Sq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// Nrm1 returns the L1 norm ||x||_1.
func Nrm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NrmInf returns the infinity norm max_i |x_i|.
func NrmInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		av := math.Abs(v)
		if av > m {
			m = av
		}
	}
	return m
}

// DistSq returns ||a - b||_2^2.
func DistSq(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vec: DistSq length mismatch")
	}
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Sum returns the plain sum of elements.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// KahanSum returns the compensated (Kahan–Babuška) sum of x. The consensus
// reductions use this so that the order-of-magnitude spread between dual and
// primal contributions does not lose low bits; it is what makes histories
// bit-reproducible across schedule-equivalent collectives.
func KahanSum(x []float64) float64 {
	var s, c float64
	for _, v := range x {
		t := s + v
		if math.Abs(s) >= math.Abs(v) {
			c += (s - t) + v
		} else {
			c += (v - t) + s
		}
		s = t
	}
	return s + c
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Clone returns a newly allocated copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// CloneInto copies x into dst, growing dst only when its capacity is too
// small, and returns the destination. Steady-state callers that hold on
// to the returned slice amortize to zero allocation.
func CloneInto(dst, x []float64) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	copy(dst, x)
	return dst
}

// Equal reports whether a and b are elementwise identical (bitwise for NaN:
// NaN != NaN, matching ==).
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, av := range a {
		if av != b[i] {
			return false
		}
	}
	return true
}

// WithinTol reports whether max_i |a_i - b_i| <= tol.
func WithinTol(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, av := range a {
		if math.Abs(av-b[i]) > tol {
			return false
		}
	}
	return true
}

// SoftThreshold applies the scalar soft-thresholding (shrinkage) operator
//
//	S(v, k) = sign(v) * max(|v| - k, 0)
//
// which is the proximal operator of k*|·|. It is the core of the
// L1-regularized z-update in consensus ADMM.
func SoftThreshold(v, k float64) float64 {
	switch {
	case v > k:
		return v - k
	case v < -k:
		return v + k
	default:
		return 0
	}
}

// SoftThresholdVec applies SoftThreshold elementwise: dst_i = S(x_i, k).
// dst may alias x.
func SoftThresholdVec(dst, x []float64, k float64) {
	if len(dst) != len(x) {
		panic("vec: SoftThresholdVec length mismatch")
	}
	for i, v := range x {
		dst[i] = SoftThreshold(v, k)
	}
}

// CountNonzero returns the number of elements with |x_i| > 0.
func CountNonzero(x []float64) int {
	n := 0
	for _, v := range x {
		if v != 0 {
			n++
		}
	}
	return n
}

// Chunk describes the half-open index range [Lo, Hi) of block i when a
// vector of length n is split into p nearly equal contiguous blocks. The
// first n%p blocks get one extra element, matching the block layout both
// allreduce implementations and their cost analysis assume.
type Chunk struct{ Lo, Hi int }

// Len returns the chunk's width.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// Of returns the chunk's view of a full-length dense vector — a no-copy
// block slice, the dense half of the shard-view primitives (the sparse
// half is sparse.Vector.Range). Mutating the view mutates x.
func (c Chunk) Of(x []float64) []float64 { return x[c.Lo:c.Hi] }

// Split returns the p chunks of a length-n vector. Every index belongs to
// exactly one chunk; chunks are contiguous, ordered, and sizes differ by at
// most one. p must be >= 1; n may be smaller than p (trailing chunks are
// then empty).
func Split(n, p int) []Chunk {
	return SplitInto(nil, n, p)
}

// SplitInto writes the p chunks of a length-n vector into dst (grown only
// when its capacity is too small) and returns it. Identical layout to
// Split; callers that retain dst split with zero steady-state allocation.
func SplitInto(dst []Chunk, n, p int) []Chunk {
	if p < 1 {
		panic("vec: Split requires p >= 1")
	}
	if cap(dst) < p {
		dst = make([]Chunk, p)
	}
	dst = dst[:p]
	base := n / p
	rem := n % p
	lo := 0
	for i := range dst {
		size := base
		if i < rem {
			size++
		}
		dst[i] = Chunk{Lo: lo, Hi: lo + size}
		lo += size
	}
	return dst
}

// ChunkOf returns the chunk index that owns position idx under Split(n, p).
func ChunkOf(n, p, idx int) int {
	if idx < 0 || idx >= n {
		panic("vec: ChunkOf index out of range")
	}
	base := n / p
	rem := n % p
	// First rem chunks have size base+1 and cover [0, rem*(base+1)).
	big := rem * (base + 1)
	if idx < big {
		return idx / (base + 1)
	}
	if base == 0 {
		// idx >= big and all remaining chunks are empty: unreachable given
		// idx < n, because n == big when base == 0.
		panic("vec: ChunkOf internal error")
	}
	return rem + (idx-big)/base
}
