// Package checkpoint provides the pluggable snapshot stores the
// degraded-mode runtimes write to. The store is deliberately dumb — save
// one opaque blob, load it back — so the binary snapshot format (package
// exchange) and the storage medium evolve independently. A training job
// that dies keeps at most CheckpointEvery iterations of work to redo.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// On-disk integrity: DirStore appends an 12-byte trailer — the magic
// "PSCKSUM1" plus a little-endian CRC32C of the blob — to every file it
// writes, and Load verifies and strips it. A flipped bit anywhere in the
// snapshot (or the trailer) then surfaces as ErrChecksum instead of a
// decode-time shape error or, worse, silently wrong restored state. Files
// without the trailer (written before it existed) still load: the magic
// cannot appear by accident at the end of a PSCK blob the paired CRC also
// matches, so verification is opt-in per file, not a format break.

// ErrChecksum reports a snapshot file whose integrity trailer does not
// match its contents — on-disk corruption, not a missing snapshot.
var ErrChecksum = errors.New("checkpoint: snapshot checksum mismatch")

const sumMagic = "PSCKSUM1"

// sumTrailerLen is the trailer's size: 8 magic bytes + 4 CRC bytes.
const sumTrailerLen = len(sumMagic) + 4

var sumTable = crc32.MakeTable(crc32.Castagnoli)

// appendSum returns data with the integrity trailer appended.
func appendSum(data []byte) []byte {
	out := make([]byte, 0, len(data)+sumTrailerLen)
	out = append(out, data...)
	out = append(out, sumMagic...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(data, sumTable))
}

// checkSum verifies and strips the trailer. Legacy files without one pass
// through unchanged.
func checkSum(data []byte) ([]byte, error) {
	if len(data) < sumTrailerLen || string(data[len(data)-sumTrailerLen:len(data)-4]) != sumMagic {
		return data, nil // pre-trailer file: loadable, just unverified
	}
	body := data[:len(data)-sumTrailerLen]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, sumTable); got != want {
		return nil, fmt.Errorf("%w: file CRC %08x, computed %08x", ErrChecksum, want, got)
	}
	return body, nil
}

// Store persists the latest snapshot blob. Save replaces any previous
// snapshot atomically; Load returns (nil, false, nil) when no snapshot
// exists yet.
type Store interface {
	Save(data []byte) error
	Load() (data []byte, ok bool, err error)
}

// DirStore keeps the snapshot as one file inside a directory, written via
// a temp file + rename so a crash mid-save never corrupts the previous
// snapshot (rename within a directory is atomic on POSIX). The temp file
// is fsynced before the rename and the directory after it: without the
// first, a power loss can promote a zero-length or torn temp file to the
// "committed" name; without the second, the rename itself may not survive
// the crash and Load would silently resurrect the previous snapshot.
type DirStore struct {
	dir  string
	name string
}

// NewDirStore returns a store writing `name` (e.g. "rank-0.ckpt") inside
// dir, creating the directory if needed.
func NewDirStore(dir, name string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if name == "" {
		name = "checkpoint.bin"
	}
	return &DirStore{dir: dir, name: name}, nil
}

// Path returns the snapshot's final path.
func (s *DirStore) Path() string { return filepath.Join(s.dir, s.name) }

// Save atomically replaces the stored snapshot, appending the integrity
// trailer Load verifies.
func (s *DirStore) Save(data []byte) error {
	data = appendSum(data)
	tmp, err := os.CreateTemp(s.dir, s.name+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so a just-committed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("checkpoint: fsync dir: %w", err)
	}
	return nil
}

// Load reads the stored snapshot, reporting ok=false when none exists and
// ErrChecksum when the file's integrity trailer does not match its
// contents.
func (s *DirStore) Load() ([]byte, bool, error) {
	data, err := os.ReadFile(s.Path())
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: %w", err)
	}
	body, err := checkSum(data)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", s.Path(), err)
	}
	return body, true, nil
}

// MemStore is an in-memory Store for tests and the in-process engine.
type MemStore struct {
	mu   sync.Mutex
	data []byte
	has  bool
	// Saves counts completed Save calls (test assertions).
	saves int
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save replaces the stored snapshot.
func (s *MemStore) Save(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = append([]byte(nil), data...)
	s.has = true
	s.saves++
	return nil
}

// Load returns the stored snapshot, ok=false when none was saved.
func (s *MemStore) Load() ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.has {
		return nil, false, nil
	}
	return append([]byte(nil), s.data...), true, nil
}

// Saves reports how many snapshots were saved.
func (s *MemStore) Saves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saves
}
