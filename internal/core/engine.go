package core

import (
	"fmt"

	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

// RunOptions carries the optional evaluation inputs of a run.
type RunOptions struct {
	// Test enables per-iteration accuracy reporting.
	Test *dataset.Dataset
	// FStar enables relative-error reporting (paper eq. 18) against a
	// reference optimum, e.g. from ReferenceOptimum.
	FStar float64
	// HaveFStar distinguishes FStar == 0 from "not provided".
	HaveFStar bool
	// OnIteration, when non-nil, observes each IterStat as it is
	// produced (progress reporting in the CLIs).
	OnIteration func(IterStat)
}

// Run trains L1-regularized logistic regression on train with the
// configured algorithm and virtual cluster, returning the per-iteration
// history. Runs are deterministic: equal inputs give bit-identical
// histories.
//
// Run contains the ONE iteration loop of the engine. Everything
// algorithm-specific lives behind the strategy triple the registry binds
// to cfg.Algorithm: the ConsensusStrategy executes the round, the
// SyncModel decides admission, and the ExchangeCodec fixes the wire
// format. The loop itself only does bookkeeping every variant shares —
// residuals, evaluation cadence, adaptive penalty, early stopping.
//
// Failure semantics: if the communication fabric fails mid-run (a rank
// killed by Config.Faults, a closed endpoint), Run aborts the iteration,
// unblocks every worker goroutine, and returns the partial Result
// accumulated so far ALONGSIDE the error — callers get the history up to
// the failure instead of a deadlock.
func Run(cfg Config, train *dataset.Dataset, opts RunOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	if train.Rows() < cfg.Topo.Size() {
		return nil, fmt.Errorf("core: %d rows cannot feed %d workers", train.Rows(), cfg.Topo.Size())
	}
	variant, ok := Lookup(cfg.Algorithm)
	if !ok { // unreachable after Validate; kept for direct callers
		return nil, fmt.Errorf("core: unknown algorithm %q", cfg.Algorithm)
	}
	consensusKind, syncKind, codecKind := variant.resolve(cfg)
	codec, err := exchange.For(codecKind)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", cfg.Algorithm, err)
	}

	ws := newWorkers(cfg, train)
	// One scratch fabric serves every in-run collective; rank numbering
	// matches the virtual topology so link classes resolve correctly.
	// A fault plan wraps it for deterministic failure injection.
	var fab transport.Fabric = transport.NewChanFabric(cfg.Topo.Size())
	if cfg.Faults != nil {
		fab = transport.NewFaultFabric(fab, *cfg.Faults)
	}
	defer fab.Close()

	env := &strategyEnv{
		ws:    ws,
		fab:   fab,
		codec: codec,
		sync:  newSyncModel(syncKind, cfg),
		dim:   train.Dim(),
	}
	strat, err := newStrategy(consensusKind, env, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", cfg.Algorithm, err)
	}

	res := &Result{Config: cfg, History: make([]IterStat, 0, cfg.MaxIter)}
	zPrev := make([]float64, train.Dim())
	for iter := 0; iter < cfg.MaxIter; iter++ {
		timing, err := strat.Round(cfg, iter)
		if err != nil {
			// Partial results travel with the error: everything up to the
			// failed iteration is valid history.
			res.Z = meanZ(ws)
			return res, fmt.Errorf("core: iteration %d: %w", iter, err)
		}

		stat := IterStat{
			Iter:      iter,
			Objective: nan(),
			RelError:  nan(),
			Accuracy:  nan(),
			CalTime:   timing.cal,
			CommTime:  timing.comm,
			Bytes:     timing.bytes,
			Rho:       cfg.Rho,
		}
		zbar := meanZ(ws)
		stat.PrimalRes, stat.DualRes = residuals(ws, zbar, zPrev, cfg.Rho)
		copy(zPrev, zbar)
		if iter%cfg.EvalEvery == 0 || iter == cfg.MaxIter-1 {
			stat.Objective = globalObjective(cfg, ws, zbar)
			// Paper eq. 18: |f − f*| / |f*|. Gate on HaveFStar (f* = 0 is a
			// legitimate optimum for trivially separable data, though the
			// ratio is then undefined and stays NaN).
			if opts.HaveFStar && absf(opts.FStar) != 0 {
				stat.RelError = absf(stat.Objective-opts.FStar) / absf(opts.FStar)
			}
			if opts.Test != nil {
				stat.Accuracy = opts.Test.Accuracy(zbar)
			}
		}
		res.History = append(res.History, stat)
		res.TotalCalTime += timing.cal
		res.TotalCommTime += timing.comm
		res.TotalBytes += timing.bytes
		if opts.OnIteration != nil {
			opts.OnIteration(stat)
		}
		if cfg.AdaptiveRho {
			if newRho := adaptRho(cfg.Rho, stat.PrimalRes, stat.DualRes, cfg.RhoMu, cfg.RhoTau); newRho != cfg.Rho {
				cfg.Rho = newRho
				setRho(ws, newRho)
			}
		}
		if cfg.Tol > 0 && stat.PrimalRes <= cfg.Tol && stat.DualRes <= cfg.Tol {
			res.Stopped = true
			break
		}
	}
	res.SystemTime = res.TotalCalTime + res.TotalCommTime
	res.Z = meanZ(ws)
	return res, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ReferenceOptimum computes a tight approximation of the global optimum
// f* = min_x Σ f_i(x) + λ‖x‖₁ by running the exact single-group algorithm
// (one node, one worker per data shard is unnecessary — a single worker
// holding all data suffices) for many iterations with a tight subproblem
// tolerance. Used as the denominator of the paper's relative-error metric.
func ReferenceOptimum(train *dataset.Dataset, rho, lambda float64, iters int) (float64, []float64, error) {
	if iters <= 0 {
		iters = 300
	}
	cfg := Config{
		Algorithm: GCADMM,
		Topo:      simnet.Topology{Nodes: 1, WorkersPerNode: 1},
		Rho:       rho,
		Lambda:    lambda,
		MaxIter:   iters,
		EvalEvery: iters, // only the last evaluation matters
	}
	cfg.Tron.GradTol = 1e-8
	cfg.Tron.MaxIter = 200
	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		return 0, nil, err
	}
	best := res.FinalObjective()
	// The objective at intermediate iterates can dip below the final
	// evaluation point only through numerical noise; guard by also
	// checking the final z directly and keeping the smaller of the two.
	scratch := make([]float64, train.Dim())
	obj := solver.NewLogisticProx(train.X, train.Labels, rho, scratch, scratch)
	atZ := obj.LocalLoss(res.Z) + lambda*vec.Nrm1(res.Z)
	if isNaN(best) || atZ < best {
		best = atZ
	}
	return best, vec.Clone(res.Z), nil
}
