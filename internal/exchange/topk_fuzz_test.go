package exchange

import (
	"bytes"
	"math"
	"testing"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/wire"
)

// FuzzTopKDecode mirrors wire.FuzzDecodeFrom for the top-k path: arbitrary
// bytes are parsed into a contribution plus selection parameters, pushed
// through the stateful error-feedback encode, framed with
// wire.AppendMessage, and decoded back with wire.DecodeFrom. Invariants:
// Encode never panics and never emits a structurally invalid vector
// (Check passes for both survivors and residual, nnz ≤ k), the encoded
// support is a subset of the merged input's, and the frame round-trips
// through the wire codec bit-for-bit.
func FuzzTopKDecode(f *testing.F) {
	f.Add([]byte{8, 0, 1, 2, 3}, uint8(4), false)
	f.Add([]byte{1, 255, 1, 254, 2, 253, 3, 252, 4, 0}, uint8(2), true)
	f.Add(bytes.Repeat([]byte{7}, 64), uint8(1), false)
	f.Add([]byte{}, uint8(0), true)

	f.Fuzz(func(t *testing.T, data []byte, kByte uint8, q8 bool) {
		// Deterministically derive a sparse vector from the fuzz bytes:
		// each byte contributes an index gap (low nibble + 1) and a value
		// (signed high bits), keeping indices strictly increasing.
		const dim = 4096
		v := sparse.NewVector(dim, len(data))
		idx := int32(-1)
		for _, b := range data {
			idx += int32(b&0x0f) + 1
			if int(idx) >= dim {
				break
			}
			val := float64(int8(b)) / 16
			if val == 0 {
				continue
			}
			v.Index = append(v.Index, idx)
			v.Value = append(v.Value, val)
		}
		if err := v.Check(); err != nil {
			t.Fatalf("constructed vector invalid: %v", err)
		}

		kind := TopK
		if q8 {
			kind = TopKQ8
		}
		st := NewState(kind, 0)
		k := int(kByte%64) + 1
		st.KMin, st.KMax, st.K = 1, k, k

		// Two rounds so the second encode consumes a nonempty residual.
		for round := 0; round < 2; round++ {
			merged := mergeWithResidual(v, st)
			st.Encode(v)
			if err := v.Check(); err != nil {
				t.Fatalf("round %d: encoded vector invalid: %v", round, err)
			}
			if err := st.Residual().Check(); err != nil {
				t.Fatalf("round %d: residual invalid: %v", round, err)
			}
			if v.NNZ() > k {
				t.Fatalf("round %d: %d survivors exceed k=%d", round, v.NNZ(), k)
			}
			j := 0
			for _, kept := range v.Index {
				for j < merged.NNZ() && merged.Index[j] < kept {
					j++
				}
				if j >= merged.NNZ() || merged.Index[j] != kept {
					t.Fatalf("round %d: survivor %d not in merged support", round, kept)
				}
			}
			for _, val := range v.Value {
				if math.IsNaN(val) {
					t.Fatalf("round %d: NaN survivor", round)
				}
			}

			// Wire round-trip: the encoded contribution must frame and
			// decode canonically, like any other sparse payload.
			msg := wire.SparseMsg(9, v)
			frame, err := wire.AppendMessage(nil, msg)
			if err != nil {
				t.Fatalf("round %d: encode frame: %v", round, err)
			}
			got, _, err := wire.DecodeFrom(bytes.NewReader(frame), nil)
			if err != nil {
				t.Fatalf("round %d: decode frame: %v", round, err)
			}
			re, err := wire.AppendMessage(nil, got)
			if err != nil {
				t.Fatalf("round %d: re-encode: %v", round, err)
			}
			if !bytes.Equal(frame, re) {
				t.Fatalf("round %d: wire round-trip diverged", round)
			}
		}
	})
}
