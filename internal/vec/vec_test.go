package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func randVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v, want 12", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	if !Equal(y, want) {
		t.Fatalf("Axpy = %v, want %v", y, want)
	}
}

func TestAxpyZeroAlphaNoop(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 4}
	Axpy(0, x, y)
	if !Equal(y, []float64{3, 4}) {
		t.Fatalf("Axpy(0,...) modified y: %v", y)
	}
}

func TestAxpyTo(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	dst := make([]float64, 3)
	AxpyTo(dst, -1, x, y)
	if !Equal(dst, []float64{9, 18, 27}) {
		t.Fatalf("AxpyTo = %v", dst)
	}
	// Aliasing dst with y must be safe.
	AxpyTo(y, -1, x, y)
	if !Equal(y, []float64{9, 18, 27}) {
		t.Fatalf("aliased AxpyTo = %v", y)
	}
}

func TestScaleAndScaleTo(t *testing.T) {
	x := []float64{1, -2, 4}
	Scale(0.5, x)
	if !Equal(x, []float64{0.5, -1, 2}) {
		t.Fatalf("Scale = %v", x)
	}
	dst := make([]float64, 3)
	ScaleTo(dst, 2, x)
	if !Equal(dst, []float64{1, -2, 4}) {
		t.Fatalf("ScaleTo = %v", dst)
	}
}

func TestAddSubAddInto(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	dst := make([]float64, 2)
	Add(dst, a, b)
	if !Equal(dst, []float64{4, 7}) {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, b, a)
	if !Equal(dst, []float64{2, 3}) {
		t.Fatalf("Sub = %v", dst)
	}
	AddInto(dst, a)
	if !Equal(dst, []float64{3, 5}) {
		t.Fatalf("AddInto = %v", dst)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Nrm2(x); !almostEq(got, 5, 1e-15) {
		t.Fatalf("Nrm2 = %v", got)
	}
	if got := Nrm2Sq(x); got != 25 {
		t.Fatalf("Nrm2Sq = %v", got)
	}
	if got := Nrm1(x); got != 7 {
		t.Fatalf("Nrm1 = %v", got)
	}
	if got := NrmInf(x); got != 4 {
		t.Fatalf("NrmInf = %v", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Fatalf("Nrm2(nil) = %v", got)
	}
}

func TestNrm2Overflow(t *testing.T) {
	// Naive sum-of-squares overflows; the scaled algorithm must not.
	big := math.MaxFloat64 / 4
	x := []float64{big, big}
	got := Nrm2(x)
	want := big * math.Sqrt2
	if !almostEq(got, want, 1e-14) {
		t.Fatalf("Nrm2 overflow-guard: got %v want %v", got, want)
	}
}

func TestDistSq(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 0, 3}
	if got := DistSq(a, b); got != 1+4 {
		t.Fatalf("DistSq = %v", got)
	}
}

func TestKahanSumBeatsNaive(t *testing.T) {
	// 1 followed by many tiny values that a naive sum drops entirely.
	n := 1 << 20
	x := make([]float64, n+1)
	x[0] = 1
	tiny := 1e-16
	for i := 1; i <= n; i++ {
		x[i] = tiny
	}
	want := 1 + float64(n)*tiny
	kahan := KahanSum(x)
	if math.Abs(kahan-want) > 1e-18*want {
		t.Fatalf("KahanSum = %.20f, want %.20f", kahan, want)
	}
	naive := Sum(x)
	if math.Abs(naive-want) < math.Abs(kahan-want) {
		t.Fatalf("naive sum unexpectedly beat Kahan: naive err %g kahan err %g",
			math.Abs(naive-want), math.Abs(kahan-want))
	}
}

func TestZeroFillClone(t *testing.T) {
	x := []float64{1, 2, 3}
	c := Clone(x)
	Zero(x)
	if !Equal(x, []float64{0, 0, 0}) {
		t.Fatalf("Zero = %v", x)
	}
	if !Equal(c, []float64{1, 2, 3}) {
		t.Fatalf("Clone shares backing array")
	}
	Fill(x, 7)
	if !Equal(x, []float64{7, 7, 7}) {
		t.Fatalf("Fill = %v", x)
	}
}

func TestWithinTol(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{1.05, 2}
	if WithinTol(a, b, 0.01) {
		t.Fatal("WithinTol should fail at 0.01")
	}
	if !WithinTol(a, b, 0.1) {
		t.Fatal("WithinTol should pass at 0.1")
	}
	if WithinTol(a, []float64{1}, 1) {
		t.Fatal("WithinTol must reject length mismatch")
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ v, k, want float64 }{
		{5, 2, 3},
		{-5, 2, -3},
		{1, 2, 0},
		{-1, 2, 0},
		{2, 2, 0},
		{0, 0, 0},
		{3, 0, 3},
	}
	for _, c := range cases {
		if got := SoftThreshold(c.v, c.k); got != c.want {
			t.Errorf("SoftThreshold(%v,%v) = %v, want %v", c.v, c.k, got, c.want)
		}
	}
}

func TestSoftThresholdVecAliasing(t *testing.T) {
	x := []float64{5, -5, 1, -1}
	SoftThresholdVec(x, x, 2)
	if !Equal(x, []float64{3, -3, 0, 0}) {
		t.Fatalf("SoftThresholdVec = %v", x)
	}
}

func TestCountNonzero(t *testing.T) {
	if got := CountNonzero([]float64{0, 1, 0, -2, 0}); got != 2 {
		t.Fatalf("CountNonzero = %d", got)
	}
}

func TestSplitBasic(t *testing.T) {
	chunks := Split(10, 3)
	want := []Chunk{{0, 4}, {4, 7}, {7, 10}}
	for i, c := range chunks {
		if c != want[i] {
			t.Fatalf("Split(10,3)[%d] = %+v, want %+v", i, c, want[i])
		}
	}
}

func TestSplitSmallerThanP(t *testing.T) {
	chunks := Split(2, 4)
	want := []Chunk{{0, 1}, {1, 2}, {2, 2}, {2, 2}}
	for i, c := range chunks {
		if c != want[i] {
			t.Fatalf("Split(2,4)[%d] = %+v, want %+v", i, c, want[i])
		}
	}
}

// Property: Split chunks tile [0,n) exactly, sizes differ by at most one.
func TestSplitProperties(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw % 5000)
		p := int(pRaw%64) + 1
		chunks := Split(n, p)
		if len(chunks) != p {
			return false
		}
		lo := 0
		minSize, maxSize := n+1, -1
		for _, c := range chunks {
			if c.Lo != lo || c.Hi < c.Lo {
				return false
			}
			size := c.Hi - c.Lo
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			lo = c.Hi
		}
		if lo != n {
			return false
		}
		return maxSize-minSize <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ChunkOf agrees with Split for every index.
func TestChunkOfMatchesSplit(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw%300) + 1
		p := int(pRaw%40) + 1
		chunks := Split(n, p)
		for idx := 0; idx < n; idx++ {
			ci := ChunkOf(n, p, idx)
			if idx < chunks[ci].Lo || idx >= chunks[ci].Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and bilinear within float tolerance.
func TestDotProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(64) + 1
		a, b := randVec(r, n), randVec(r, n)
		if !almostEq(Dot(a, b), Dot(b, a), 1e-12) {
			t.Fatal("Dot not symmetric")
		}
		alpha := r.NormFloat64()
		scaled := Clone(a)
		Scale(alpha, scaled)
		if !almostEq(Dot(scaled, b), alpha*Dot(a, b), 1e-10) {
			t.Fatal("Dot not homogeneous")
		}
	}
}

// Property: soft threshold is a contraction: |S(a,k)-S(b,k)| <= |a-b|.
func TestSoftThresholdContraction(t *testing.T) {
	f := func(a, b float64, kRaw float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(kRaw) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(kRaw, 0) {
			return true
		}
		k := math.Abs(kRaw)
		return math.Abs(SoftThreshold(a, k)-SoftThreshold(b, k)) <= math.Abs(a-b)*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDot(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := randVec(r, 4096)
	y := randVec(r, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkAxpy(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	x := randVec(r, 4096)
	y := randVec(r, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Axpy(0.5, x, y)
	}
}

func BenchmarkKahanSum(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	x := randVec(r, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = KahanSum(x)
	}
}

func TestCloneInto(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	dst := CloneInto(nil, x)
	if !Equal(dst, x) {
		t.Fatal("CloneInto(nil) mismatch")
	}
	dst[0] = 99
	if x[0] == 99 {
		t.Fatal("CloneInto shares storage")
	}
	// Reuse path: same backing array, no growth.
	big := make([]float64, 8)
	out := CloneInto(big, x)
	if len(out) != 4 || &out[0] != &big[0] {
		t.Fatal("CloneInto did not reuse capacity")
	}
	if n := testing.AllocsPerRun(50, func() { out = CloneInto(out, x) }); n > 0 {
		t.Errorf("warmed CloneInto allocates %.1f, want 0", n)
	}
}

func TestSplitInto(t *testing.T) {
	dst := make([]Chunk, 0, 16)
	for n := 0; n < 40; n++ {
		for p := 1; p < 9; p++ {
			want := Split(n, p)
			dst = SplitInto(dst, n, p)
			if len(dst) != len(want) {
				t.Fatalf("SplitInto(%d,%d) len %d want %d", n, p, len(dst), len(want))
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("SplitInto(%d,%d)[%d] = %v want %v", n, p, i, dst[i], want[i])
				}
			}
		}
	}
	if n := testing.AllocsPerRun(50, func() { dst = SplitInto(dst, 1000, 8) }); n > 0 {
		t.Errorf("warmed SplitInto allocates %.1f, want 0", n)
	}
}
