package bench

import (
	"fmt"

	"psrahgadmm/internal/core"
	"psrahgadmm/internal/metrics"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
)

// Ablation runs the design-choice studies DESIGN.md §5 calls out:
//
//  1. group-threshold sweep (consensus breadth vs straggler isolation);
//  2. hierarchy on/off (PSRA-HGADMM vs flat PSRA-ADMM);
//  3. TRON inner budget vs outer ADMM convergence;
//  4. computing-model comparison at fixed topology (BSP exact vs SSP).
func Ablation(opts Options) error {
	opts.fill()
	dcfg := BenchDatasets(opts.Seed, true)[0] // the small dataset keeps this quick
	l, err := load(dcfg)
	if err != nil {
		return err
	}
	fstar, err := l.referenceOptimum(opts.Rho, opts.Lambda)
	if err != nil {
		return err
	}
	nodes, wpn := 8, 2
	iters := opts.MaxIter
	if iters > 40 {
		iters = 40
	}

	// 1. Group threshold sweep under stragglers.
	t1 := metrics.NewTable(
		fmt.Sprintf("Ablation 1 — GQ threshold sweep, %s, %d nodes, stragglers on (%d iters)", dcfg.Name, nodes, iters),
		"threshold", "rel_error", "comm_time", "system_time")
	for _, th := range []int{1, 2, 4, 8} {
		cfg := runCfg(core.PSRAHGADMM, nodes, wpn, opts)
		cfg.MaxIter = iters
		cfg.GroupThreshold = th
		cfg.Stragglers = simnet.Default(opts.Seed + 7)
		res, err := core.Run(cfg, l.train, core.RunOptions{FStar: fstar, HaveFStar: true})
		if err != nil {
			return fmt.Errorf("ablation threshold %d: %w", th, err)
		}
		t1.AddRow(th, res.History[len(res.History)-1].RelError,
			metrics.Seconds(res.TotalCommTime), metrics.Seconds(res.SystemTime))
	}
	if err := emit(opts, t1); err != nil {
		return err
	}
	fmt.Fprintln(opts.Out)

	// 2. Hierarchical vs flat aggregation.
	t2 := metrics.NewTable(
		fmt.Sprintf("Ablation 2 — aggregation structure at identical BSP numerics, %s, %d nodes × %d workers (%d iters)", dcfg.Name, nodes, wpn, iters),
		"variant", "rel_error", "comm_time", "comm_bytes")
	for _, alg := range []core.Algorithm{core.PSRAHGADMM, core.PSRAADMM, core.GRADMM} {
		cfg := runCfg(alg, nodes, wpn, opts)
		cfg.MaxIter = iters
		cfg.GroupThreshold = nodes // isolate the hierarchy effect from grouping
		res, err := core.Run(cfg, l.train, core.RunOptions{FStar: fstar, HaveFStar: true})
		if err != nil {
			return fmt.Errorf("ablation hierarchy %s: %w", alg, err)
		}
		t2.AddRow(string(alg), res.History[len(res.History)-1].RelError,
			metrics.Seconds(res.TotalCommTime), metrics.Bytes(res.TotalBytes))
	}
	if err := emit(opts, t2); err != nil {
		return err
	}
	fmt.Fprintln(opts.Out)

	// 3. TRON inner budget.
	t3 := metrics.NewTable(
		fmt.Sprintf("Ablation 3 — TRON inner budget, %s (%d iters)", dcfg.Name, iters),
		"tron_max_iter", "rel_error", "cal_time")
	for _, mi := range []int{1, 3, 10, 50} {
		cfg := runCfg(core.PSRAHGADMM, nodes, wpn, opts)
		cfg.MaxIter = iters
		cfg.Tron = solver.TronOptions{MaxIter: mi}
		res, err := core.Run(cfg, l.train, core.RunOptions{FStar: fstar, HaveFStar: true})
		if err != nil {
			return fmt.Errorf("ablation tron %d: %w", mi, err)
		}
		t3.AddRow(mi, res.History[len(res.History)-1].RelError,
			metrics.Seconds(res.TotalCalTime))
	}
	if err := emit(opts, t3); err != nil {
		return err
	}
	fmt.Fprintln(opts.Out)

	// 4. Quantized exchange (the Q-GADMM-style lossy option): accuracy
	// and objective vs bytes at 0/16/8 value bits.
	t3b := metrics.NewTable(
		fmt.Sprintf("Ablation 3b — quantized w exchange, %s (%d iters)", dcfg.Name, iters),
		"value_bits", "rel_error", "comm_bytes")
	for _, bits := range []int{0, 16, 8} {
		cfg := runCfg(core.PSRAHGADMM, nodes, wpn, opts)
		cfg.MaxIter = iters
		cfg.QuantBits = bits
		res, err := core.Run(cfg, l.train, core.RunOptions{FStar: fstar, HaveFStar: true})
		if err != nil {
			return fmt.Errorf("ablation quant %d: %w", bits, err)
		}
		label := bits
		if bits == 0 {
			label = 64
		}
		t3b.AddRow(label, res.History[len(res.History)-1].RelError, metrics.Bytes(res.TotalBytes))
	}
	if err := emit(opts, t3b); err != nil {
		return err
	}
	fmt.Fprintln(opts.Out)

	// 5. Adaptive penalty (residual balancing) vs fixed ρ from a poor
	// starting value.
	t3c := metrics.NewTable(
		fmt.Sprintf("Ablation 3c — adaptive ρ from a poor start (ρ₀=0.01), %s (%d iters)", dcfg.Name, iters),
		"penalty", "rel_error", "final_rho")
	for _, adaptive := range []bool{false, true} {
		cfg := runCfg(core.PSRAHGADMM, nodes, wpn, opts)
		cfg.MaxIter = iters
		cfg.Rho = 0.01
		cfg.AdaptiveRho = adaptive
		res, err := core.Run(cfg, l.train, core.RunOptions{FStar: fstar, HaveFStar: true})
		if err != nil {
			return fmt.Errorf("ablation adaptive %v: %w", adaptive, err)
		}
		name := "fixed"
		if adaptive {
			name = "adaptive"
		}
		t3c.AddRow(name, res.History[len(res.History)-1].RelError,
			res.History[len(res.History)-1].Rho)
	}
	if err := emit(opts, t3c); err != nil {
		return err
	}
	fmt.Fprintln(opts.Out)

	// 6. Computing model at fixed hierarchy: BSP (PSRA-HGADMM single
	// group) vs SSP (ADMMLib) under stragglers.
	t4 := metrics.NewTable(
		fmt.Sprintf("Ablation 4 — BSP vs SSP at fixed topology, %s, stragglers on (%d iters)", dcfg.Name, iters),
		"model", "rel_error", "comm_time", "system_time")
	for _, row := range []struct {
		name string
		alg  core.Algorithm
	}{{"BSP (psra-hgadmm, one group)", core.PSRAHGADMM}, {"SSP (admmlib)", core.ADMMLib}} {
		cfg := runCfg(row.alg, nodes, wpn, opts)
		cfg.MaxIter = iters
		cfg.GroupThreshold = nodes
		cfg.Stragglers = simnet.Default(opts.Seed + 7)
		res, err := core.Run(cfg, l.train, core.RunOptions{FStar: fstar, HaveFStar: true})
		if err != nil {
			return fmt.Errorf("ablation model %s: %w", row.name, err)
		}
		t4.AddRow(row.name, res.History[len(res.History)-1].RelError,
			metrics.Seconds(res.TotalCommTime), metrics.Seconds(res.SystemTime))
	}
	return emit(opts, t4)
}
