package core

import (
	"fmt"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/shard"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/sparse"
)

// The StateStore layer: ONE owner for the consensus state's placement.
// Every difference between the replicated engine (each rank holds the full
// dense z) and the block-sharded engine (each rank holds only the compact
// concatenation of its subscribed blocks) lives behind this interface —
// allocation, the collective that reduces W, the z-update's contributor
// scaling, delivery to workers, rejoin warm-starts, full-dimension
// assembly for evaluation, wire encoding, ResidentBytes accounting, and
// the checkpoint encode/decode of the z state.
//
// The strategies and the engine never ask "am I sharded?" beyond the one
// capability check in newStrategy; they call the store. This is what lets
// state placement compose freely with the SyncModel axis: an SSP or async
// round admits workers exactly as before, feeds every LIVE rank's cached
// (possibly stale) contribution into the store's collective, and the store
// scales each block by its live subscriber count — a stale block's laggard
// simply keeps serving its previous contribution under the Max_delay
// bound, with EF residuals and the divergence watchdog applied to whatever
// storage the rank actually holds.
//
// Determinism contract: for a given placement the store performs the exact
// float operations, in the exact order, that the pre-store engine did —
// replicated runs and sharded BSP runs stay bit-identical to their
// goldens, and a fully subscribed sharded run still reproduces the
// replicated trajectory bit for bit.
type stateStore interface {
	// Sharded reports the placement (the one capability check newStrategy
	// keys on: ring/group-local consensus cannot run over sharded state).
	Sharded() bool
	// initWorkers allocates every worker's consensus storage for this
	// placement. Called once, before the first iteration.
	initWorkers()
	// allreduceW reduces the live ranks' contributions: replicated, a
	// full-width PSR-Allreduce whose aggregate lands in the caller-owned
	// agg; sharded, the shard-aware collective where each member receives
	// only its subscription (in crew.outs) and agg stays untouched.
	allreduceW(ranks []int, inputs []*sparse.Vector, agg *sparse.Vector) (collective.Trace, error)
	// beginApply prepares one round's apply state from the collective's
	// result: the densified W replicated, the per-block live subscriber
	// counts sharded. Call once per round, before applyReduced.
	beginApply(cfg Config, agg *sparse.Vector)
	// applyReduced applies the reduced W to one fresh worker (the flat
	// path, where every member holds a reduction result).
	applyReduced(cfg Config, w *worker, contributors int)
	// zUpdateDense computes z into dst from a dense W sum (the star path):
	// scaled by the global contributor count replicated, per block by live
	// subscribers sharded.
	zUpdateDense(dst, wsum []float64, cfg Config, contributors int)
	// zFromW computes sparse z from a sparse W sum (the tree path), with
	// the same contributor scaling split as zUpdateDense.
	zFromW(wsum *sparse.Vector, cfg Config, contributors int) *sparse.Vector
	// applyZ delivers the consensus iterate to one worker, which retains
	// it in whatever storage this placement gives it.
	applyZ(cfg Config, w *worker, zDense []float64, zSparse *sparse.Vector)
	// rejoin warm-starts a revived rank's consensus view from the
	// cluster's current full-dimension iterate.
	rejoin(w *worker, z []float64, clock float64)
	// assembleInto reconstructs the full-dimension consensus summary the
	// engine evaluates: the mean over live workers' views replicated (live
	// is the engine's fallback-corrected live list), the per-block live-
	// subscriber average sharded (alive is the matching liveness filter).
	assembleInto(out []float64, live []*worker, alive func(rank int) bool)
	// encodeSparse routes a stateless-codec contribution through the wire
	// format: whole-vector replicated, per-block scaling sharded.
	encodeSparse(v *sparse.Vector)
	// residentBytes is one rank's consensus-state footprint under this
	// placement — the figure IterStat.ResidentBytes reports every
	// iteration, under every sync model.
	residentBytes(w *worker) int64
	// snapshotZ captures the rank's z state into a checkpoint entry, in
	// the layout the rank actually holds.
	snapshotZ(w *worker, s *exchange.WorkerSnap)
	// restoreZ validates and restores a checkpoint entry's z state into
	// the rank's storage.
	restoreZ(w *worker, s *exchange.WorkerSnap) error
}

// newStateStore builds the run's store: sharded when the variant or the
// config asks for it, replicated otherwise. Must run after env.ws is
// populated (the sharded subscription map derives from the workers' active
// column sets).
func newStateStore(env *strategyEnv, sharded bool, blocks int) stateStore {
	if !sharded {
		return &replicatedStore{env: env}
	}
	if blocks <= 0 {
		blocks = len(env.ws)
	}
	return newShardedStore(env, blocks)
}

// replicatedStore is the classic placement: every rank allocates the full
// dense z (zStore aliases zDense), the collective reduces full-width, and
// the z-update divides by the global contributor count.
type replicatedStore struct {
	env *strategyEnv
	// bigW is the flat path's densified aggregate, grown once and reused
	// (the zero-alloc steady state the bench snapshot pins).
	bigW []float64
}

func (s *replicatedStore) Sharded() bool { return false }

func (s *replicatedStore) initWorkers() {
	for _, w := range s.env.ws {
		w.initReplicated()
	}
}

func (s *replicatedStore) allreduceW(ranks []int, inputs []*sparse.Vector, agg *sparse.Vector) (collective.Trace, error) {
	return groupAllreduce(s.env, ranks, commPSRSparse, inputs, agg)
}

func (s *replicatedStore) beginApply(cfg Config, agg *sparse.Vector) {
	s.bigW = agg.ToDenseInto(s.bigW)
}

func (s *replicatedStore) applyReduced(cfg Config, w *worker, contributors int) {
	w.applyW(cfg, s.bigW, contributors)
}

func (s *replicatedStore) zUpdateDense(dst, wsum []float64, cfg Config, contributors int) {
	solverZUpdate(dst, wsum, cfg.Lambda, cfg.Rho, contributors)
}

func (s *replicatedStore) zFromW(wsum *sparse.Vector, cfg Config, contributors int) *sparse.Vector {
	return zFromW(wsum, cfg.Lambda, cfg.Rho, contributors)
}

func (s *replicatedStore) applyZ(cfg Config, w *worker, zDense []float64, zSparse *sparse.Vector) {
	w.applyZDense(cfg, zDense, zSparse)
}

func (s *replicatedStore) rejoin(w *worker, z []float64, clock float64) {
	w.rejoinReplicated(z, clock)
}

func (s *replicatedStore) assembleInto(out []float64, live []*worker, alive func(rank int) bool) {
	meanZInto(out, live)
}

func (s *replicatedStore) encodeSparse(v *sparse.Vector) { s.env.codec.EncodeSparse(v) }

func (s *replicatedStore) residentBytes(w *worker) int64 { return w.residentBytes() }

func (s *replicatedStore) snapshotZ(w *worker, snap *exchange.WorkerSnap) {
	snapshotWorkerZ(w, snap)
}

func (s *replicatedStore) restoreZ(w *worker, snap *exchange.WorkerSnap) error {
	return restoreWorkerZ(w, snap)
}

// shardedStore block-partitions the dimension and subscribes each rank to
// the blocks its active columns fall into; workers hold only the compact
// subscribed concatenation (no full-dimension iterate exists on any rank).
// The map is immutable for the run — elastic regroups change who is ALIVE,
// never who subscribes to what — so SSP/async staleness composes cleanly:
// a stale rank's cached contribution keeps feeding its blocks' sums, and
// the per-block live-subscriber scaling is unchanged by admission order.
type shardedStore struct {
	env  *strategyEnv
	smap *shard.Map
	// The live-plan cache projects the map onto the current live group,
	// invalidated by membership epoch (group composition is a pure
	// function of who is alive).
	plan      *shard.Plan
	planRanks []int
	planEpoch int
	// counts holds the per-block live subscriber counts — the per-block
	// divisor of the sharded z-update, refreshed per round.
	counts []int
	// offs caches the partition's block boundaries ([0, ..., dim]) for the
	// per-block codec and z-update paths.
	offs []int
}

func newShardedStore(env *strategyEnv, blocks int) *shardedStore {
	part := shard.NewPartition(env.dim, blocks)
	active := make([][]int32, len(env.ws))
	for i, w := range env.ws {
		active[i] = w.active
	}
	return &shardedStore{env: env, smap: shard.NewMap(part, active)}
}

func (s *shardedStore) Sharded() bool { return true }

func (s *shardedStore) initWorkers() {
	for _, w := range s.env.ws {
		w.initShard(s.smap)
	}
}

// livePlan projects the shard map onto the given live group ranks, cached
// across rounds and rebuilt only when the membership epoch moves.
func (s *shardedStore) livePlan(ranks []int) *shard.Plan {
	if s.plan != nil && s.planEpoch == s.env.members.Epoch() && equalRanks(s.planRanks, ranks) {
		return s.plan
	}
	s.plan = s.smap.Plan(ranks)
	s.planRanks = append(s.planRanks[:0], ranks...)
	s.planEpoch = s.env.members.Epoch()
	return s.plan
}

// liveCounts refreshes the per-block live subscriber counts.
func (s *shardedStore) liveCounts() []int {
	s.counts = s.smap.LiveCounts(s.counts, s.env.members.Alive)
	return s.counts
}

// blockOffs returns the partition's block boundary offsets
// [Chunk(0).Lo, ..., dim], built once.
func (s *shardedStore) blockOffs() []int {
	if s.offs == nil {
		part := s.smap.Part
		s.offs = make([]int, part.Blocks+1)
		for b := 0; b < part.Blocks; b++ {
			s.offs[b] = part.Chunk(b).Lo
		}
		s.offs[part.Blocks] = part.Dim
	}
	return s.offs
}

func (s *shardedStore) allreduceW(ranks []int, inputs []*sparse.Vector, agg *sparse.Vector) (collective.Trace, error) {
	// Shard-aware collective: each member ships only the blocks it
	// subscribes to or owns, and receives back only its subscription — no
	// rank materializes the full W (agg stays untouched; the restricted
	// results land in crew.outs).
	return groupShardAllreduce(s.env, ranks, s.livePlan(ranks), inputs)
}

func (s *shardedStore) beginApply(cfg Config, agg *sparse.Vector) {
	s.liveCounts()
}

func (s *shardedStore) applyReduced(cfg Config, w *worker, contributors int) {
	// The rank's restricted reduction came back in its own crew slot; the
	// z-update averages each block over its live subscribers.
	w.applyWShard(cfg, s.env.crew.outs[w.rank], s.counts)
}

func (s *shardedStore) zUpdateDense(dst, wsum []float64, cfg Config, contributors int) {
	// Each block averages over its live subscribers, not the global
	// contributor count — off-subscription ranks never fed the block's W
	// sum, so dividing by the world would bias z.
	solver.ZUpdateL1Blocks(dst, wsum, cfg.Lambda, cfg.Rho, s.blockOffs(), s.liveCounts())
}

func (s *shardedStore) zFromW(wsum *sparse.Vector, cfg Config, contributors int) *sparse.Vector {
	return zFromWBlocks(wsum, cfg.Lambda, cfg.Rho, s.smap.Part, s.liveCounts())
}

func (s *shardedStore) applyZ(cfg Config, w *worker, zDense []float64, zSparse *sparse.Vector) {
	w.applyZShard(cfg, zDense, zSparse)
}

func (s *shardedStore) rejoin(w *worker, z []float64, clock float64) {
	w.rejoinShard(z, clock)
}

func (s *shardedStore) assembleInto(out []float64, live []*worker, alive func(rank int) bool) {
	assembleShardedZ(out, s.env.ws, s.smap, alive)
}

func (s *shardedStore) encodeSparse(v *sparse.Vector) {
	// Sharded runs quantize per block: each block scales against its own
	// max-abs, so a loud block cannot wash out a quiet one that travels to
	// a different owner. Exact codecs pass through untouched.
	exchange.EncodeSparseBlocks(s.env.codec, v, s.blockOffs())
}

func (s *shardedStore) residentBytes(w *worker) int64 { return w.residentBytes() }

func (s *shardedStore) snapshotZ(w *worker, snap *exchange.WorkerSnap) {
	snapshotWorkerZ(w, snap)
}

func (s *shardedStore) restoreZ(w *worker, snap *exchange.WorkerSnap) error {
	return restoreWorkerZ(w, snap)
}

// snapshotWorkerZ captures the rank's consensus storage as the rank holds
// it: the full dimension replicated, the compact subscribed-block
// concatenation sharded. The PSCK format is unchanged between placements —
// only the slice's length differs.
func snapshotWorkerZ(w *worker, snap *exchange.WorkerSnap) {
	snap.ZDense = append([]float64(nil), w.zStore...)
	snap.ZIdx = append([]int32(nil), w.zSparse.Index...)
	snap.ZVal = append([]float64(nil), w.zSparse.Value...)
}

// restoreWorkerZ validates and restores one rank's z state. It copies INTO
// the existing zStore slice (which shares zDense's backing replicated and
// IS the state sharded) and rebuilds the sparse view fresh.
func restoreWorkerZ(w *worker, snap *exchange.WorkerSnap) error {
	if len(snap.ZDense) != len(w.zStore) {
		return fmt.Errorf("core: snapshot rank %d state shape does not match this dataset (or its shard layout)", w.rank)
	}
	if len(snap.ZIdx) != len(snap.ZVal) {
		return fmt.Errorf("core: snapshot rank %d sparse z index/value length mismatch", w.rank)
	}
	copy(w.zStore, snap.ZDense)
	w.zSparse = &sparse.Vector{
		Dim:   w.dim,
		Index: append([]int32(nil), snap.ZIdx...),
		Value: append([]float64(nil), snap.ZVal...),
	}
	return nil
}
