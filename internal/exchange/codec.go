// Package exchange defines the ExchangeCodec axis of the strategy
// decomposition: how ADMM contributions are represented on the wire.
// Where the consensus strategy decides WHO communicates and the sync model
// decides WHEN, the codec decides WHAT travels — full float64, ADMMLib's
// single-precision parameter exchange, or Q-GADMM-style fixed-point
// quantization — and therefore how many bytes every collective costs.
//
// Both execution paths share this package: the DES-clock engine
// (internal/core) uses codecs to encode contributions and to rescale
// collective traces to wire sizes, and the real-fabric WLG runtime
// (internal/wlg) uses the same codecs to round the vectors it actually
// ships. Lossy encodings are applied to VALUES before a collective runs,
// so both paths aggregate exactly what a real cluster would.
package exchange

import (
	"fmt"
	"math"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/wire"
)

// Kind names a codec in the algorithm registry.
type Kind string

// The implemented codecs.
const (
	// Sparse is the exact sparse float64 exchange (the PSRA default):
	// 4-byte index + 8-byte value per nonzero.
	Sparse Kind = "sparse"
	// SparseQ8 and SparseQ16 quantize sparse values to 8/16-bit fixed
	// point with a per-vector max-abs scale (Q-GADMM-style).
	SparseQ8  Kind = "sparse-q8"
	SparseQ16 Kind = "sparse-q16"
	// Dense ships full dense float64 vectors (the master-worker
	// baselines' exchange).
	Dense Kind = "dense"
	// DenseF32 ships dense vectors rounded to float32 precision at half
	// the bytes (ADMMLib's single-precision parameter exchange).
	DenseF32 Kind = "dense-f32"

	// TopK and TopKQ8 are declared in topk.go: top-k sparsification with
	// per-rank error feedback, exact or 8-bit-quantized survivors.
)

// Kinds lists every implemented codec.
func Kinds() []Kind { return []Kind{Sparse, SparseQ8, SparseQ16, Dense, DenseF32, TopK, TopKQ8} }

// Codec is the exchange-representation strategy. Encode* round values in
// place to what survives the wire; the *Bytes methods and WireTrace give
// the corresponding payload sizes for the virtual cost model.
type Codec interface {
	Kind() Kind
	// DenseExchange reports whether contributions travel as full dense
	// vectors (true) or index/value sparse payloads (false).
	DenseExchange() bool
	// EncodeSparse lossily rounds a sparse contribution in place. Exact
	// codecs are no-ops.
	EncodeSparse(v *sparse.Vector)
	// EncodeDense lossily rounds a dense vector in place.
	EncodeDense(x []float64)
	// WireTrace rescales a collective trace — built at nominal sparse
	// (12-byte-entry) or dense (8-byte-entry) sizes — to this codec's
	// wire format.
	WireTrace(tr collective.Trace) collective.Trace
	// WireTraceInto is WireTrace writing the rescaled events into dst's
	// backing array (grown only when too small). Identity codecs return
	// tr unchanged without touching dst. Callers on the hot path keep the
	// returned Events slice and pass it back as dst next round, so the
	// steady state rescales without allocating.
	WireTraceInto(dst []collective.Event, tr collective.Trace) collective.Trace
	// SparseMsgBytes is the nominal payload of one sparse vector with nnz
	// entries, before WireTrace scaling.
	SparseMsgBytes(nnz int) int
	// DenseMsgBytes is the wire payload of one dense vector of dim
	// entries.
	DenseMsgBytes(dim int) int
	// ZMsgBytes is the wire payload of the distributed consensus iterate
	// with nnz nonzeros. The z indices always travel exactly; only value
	// precision varies.
	ZMsgBytes(nnz int) int
}

// For returns the codec implementing kind.
func For(kind Kind) (Codec, error) {
	switch kind {
	case Sparse:
		return sparseCodec{}, nil
	case SparseQ8:
		return quantCodec{bits: 8}, nil
	case SparseQ16:
		return quantCodec{bits: 16}, nil
	case Dense:
		return denseCodec{}, nil
	case DenseF32:
		return f32Codec{}, nil
	case TopK:
		return topkCodec{}, nil
	case TopKQ8:
		return topkCodec{bits: 8}, nil
	}
	return nil, fmt.Errorf("exchange: unknown codec %q", kind)
}

// sparseCodec is the exact sparse float64 exchange.
type sparseCodec struct{}

func (sparseCodec) Kind() Kind                                     { return Sparse }
func (sparseCodec) DenseExchange() bool                            { return false }
func (sparseCodec) EncodeSparse(*sparse.Vector)                    {}
func (sparseCodec) EncodeDense([]float64)                          {}
func (sparseCodec) WireTrace(tr collective.Trace) collective.Trace { return tr }
func (sparseCodec) WireTraceInto(_ []collective.Event, tr collective.Trace) collective.Trace {
	return tr
}
func (sparseCodec) SparseMsgBytes(nnz int) int { return 8 + wire.SparseEntryBytes*nnz }
func (sparseCodec) DenseMsgBytes(dim int) int  { return 4 + wire.DenseEntryBytes*dim }
func (sparseCodec) ZMsgBytes(nnz int) int      { return 8 + wire.SparseEntryBytes*nnz }

// quantCodec is the b-bit fixed-point sparse exchange: values quantize to
// bits-wide levels against a per-vector max-abs scale, and every sparse
// entry costs 4 index bytes plus bits/8 value bytes on the wire. z still
// travels at full precision (it is already thresholded and sparse).
type quantCodec struct{ bits int }

func (c quantCodec) Kind() Kind {
	if c.bits == 8 {
		return SparseQ8
	}
	return SparseQ16
}
func (quantCodec) DenseExchange() bool             { return false }
func (c quantCodec) EncodeSparse(v *sparse.Vector) { QuantizeSparseBits(v, c.bits) }
func (c quantCodec) EncodeDense(x []float64)       { QuantizeDenseBits(x, c.bits) }
func (c quantCodec) WireTrace(tr collective.Trace) collective.Trace {
	return ScaleTraceBytes(tr, EntryBytes(c.bits), wire.SparseEntryBytes)
}
func (c quantCodec) WireTraceInto(dst []collective.Event, tr collective.Trace) collective.Trace {
	return ScaleTraceBytesInto(dst, tr, EntryBytes(c.bits), wire.SparseEntryBytes)
}
func (quantCodec) SparseMsgBytes(nnz int) int { return 8 + wire.SparseEntryBytes*nnz }
func (quantCodec) DenseMsgBytes(dim int) int  { return 4 + wire.DenseEntryBytes*dim }
func (quantCodec) ZMsgBytes(nnz int) int      { return 8 + wire.SparseEntryBytes*nnz }

// denseCodec is the exact dense float64 exchange.
type denseCodec struct{}

func (denseCodec) Kind() Kind                                     { return Dense }
func (denseCodec) DenseExchange() bool                            { return true }
func (denseCodec) EncodeSparse(*sparse.Vector)                    {}
func (denseCodec) EncodeDense([]float64)                          {}
func (denseCodec) WireTrace(tr collective.Trace) collective.Trace { return tr }
func (denseCodec) WireTraceInto(_ []collective.Event, tr collective.Trace) collective.Trace {
	return tr
}
func (denseCodec) SparseMsgBytes(nnz int) int { return 8 + wire.SparseEntryBytes*nnz }
func (denseCodec) DenseMsgBytes(dim int) int  { return 4 + wire.DenseEntryBytes*dim }
func (denseCodec) ZMsgBytes(nnz int) int      { return 4 + wire.SparseEntryBytes*nnz }

// f32Codec is ADMMLib's single-precision dense exchange: values round to
// float32, dense payloads halve, and the thresholded z fans out as 4-byte
// index + 4-byte value entries.
type f32Codec struct{}

func (f32Codec) Kind() Kind                    { return DenseF32 }
func (f32Codec) DenseExchange() bool           { return true }
func (f32Codec) EncodeSparse(v *sparse.Vector) { RoundF32Sparse(v) }
func (f32Codec) EncodeDense(x []float64)       { RoundF32(x) }
func (f32Codec) WireTrace(tr collective.Trace) collective.Trace {
	return ScaleTraceBytes(tr, 1, 2)
}
func (f32Codec) WireTraceInto(dst []collective.Event, tr collective.Trace) collective.Trace {
	return ScaleTraceBytesInto(dst, tr, 1, 2)
}
func (f32Codec) SparseMsgBytes(nnz int) int { return 8 + (4+4)*nnz }
func (f32Codec) DenseMsgBytes(dim int) int  { return 4 + wire.DenseEntryBytes*dim/2 }
func (f32Codec) ZMsgBytes(nnz int) int      { return 4 + 8*nnz }

// EncodeSparseBlocks applies c's lossy sparse value rounding independently
// to each contiguous block of a global-coordinate vector: offs lists the
// len(blocks)+1 cumulative block boundaries (offs[0] == 0, offs[last] ==
// v.Dim). Quantizing codecs derive their max-abs scale per block — matching
// what the sharded collective's separate per-owner messages would
// experience if each block traveled as its own vector — and exact codecs
// are no-ops. Top-k kinds round values only (selection is State's job,
// exactly as in Codec.EncodeSparse).
func EncodeSparseBlocks(c Codec, v *sparse.Vector, offs []int) {
	var bits int
	switch c.Kind() {
	case SparseQ8, TopKQ8:
		bits = 8
	case SparseQ16:
		bits = 16
	case DenseF32:
		RoundF32Sparse(v)
		return
	default:
		return
	}
	if len(offs) < 2 || offs[0] != 0 || offs[len(offs)-1] != v.Dim {
		panic("exchange: EncodeSparseBlocks offsets must cover [0, Dim]")
	}
	// Linear cursor, not per-block binary search: in-place compaction
	// rewrites the prefix while later blocks still need their original
	// entries, so reads must stay ahead of writes (kept <= consumed holds
	// throughout).
	levels := float64(int(1)<<(bits-1) - 1)
	n := len(v.Index)
	kept, r := 0, 0
	for b := 0; b+1 < len(offs); b++ {
		hi := int32(offs[b+1])
		start := r
		var scale float64
		for r < n && v.Index[r] < hi {
			if a := math.Abs(v.Value[r]); a > scale {
				scale = a
			}
			r++
		}
		if scale == 0 {
			continue
		}
		for k := start; k < r; k++ {
			q := math.Round(v.Value[k] / scale * levels)
			if val := q / levels * scale; val != 0 {
				v.Index[kept] = v.Index[k]
				v.Value[kept] = val
				kept++
			}
		}
	}
	v.Index = v.Index[:kept]
	v.Value = v.Value[:kept]
}

// ScaleTraceBytes multiplies every event's byte count by num/den — how
// lossy codecs rescale a trace built at nominal entry sizes without
// forking the collectives. The input trace is never mutated.
func ScaleTraceBytes(tr collective.Trace, num, den int) collective.Trace {
	return ScaleTraceBytesInto(nil, tr, num, den)
}

// ScaleTraceBytesInto is ScaleTraceBytes writing the scaled events into
// dst's backing array, which grows only when too small. The returned
// trace aliases dst (when large enough), never tr's events.
func ScaleTraceBytesInto(dst []collective.Event, tr collective.Trace, num, den int) collective.Trace {
	dst = dst[:0]
	for _, e := range tr.Events {
		e.Bytes = e.Bytes * num / den
		dst = append(dst, e)
	}
	return collective.Trace{Steps: tr.Steps, Events: dst}
}

// EntryBytes returns the wire size of one sparse element under b-bit
// quantization: 4-byte index plus bits/8 value bytes (12 bytes exact).
func EntryBytes(bits int) int {
	if bits == 8 || bits == 16 {
		return 4 + bits/8
	}
	return wire.SparseEntryBytes
}

// QuantizeSparseBits rounds a sparse vector's values to b-bit fixed point
// with a per-vector scale (max-abs), in place — the Q-GADMM-style lossy
// communication option. b must be 8 or 16; exact zeros after rounding are
// dropped to preserve the no-stored-zeros invariant.
func QuantizeSparseBits(v *sparse.Vector, bits int) {
	if v.NNZ() == 0 {
		return
	}
	var scale float64
	for _, val := range v.Value {
		if a := math.Abs(val); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return
	}
	levels := float64(int(1)<<(bits-1) - 1)
	kept := 0
	for i := range v.Value {
		q := math.Round(v.Value[i] / scale * levels)
		val := q / levels * scale
		if val != 0 {
			v.Index[kept] = v.Index[i]
			v.Value[kept] = val
			kept++
		}
	}
	v.Index = v.Index[:kept]
	v.Value = v.Value[:kept]
}

// QuantizeDenseBits applies the same b-bit max-abs fixed-point rounding to
// a dense vector in place (the WLG runtime's dense exchange).
func QuantizeDenseBits(x []float64, bits int) {
	var scale float64
	for _, v := range x {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return
	}
	levels := float64(int(1)<<(bits-1) - 1)
	for i, v := range x {
		q := math.Round(v / scale * levels)
		x[i] = q / levels * scale
	}
}

// RoundF32 rounds every element to float32 precision in place, modeling
// ADMMLib's single-precision parameter exchange (the accuracy cost §2 of
// the paper attributes to reduced-precision schemes).
func RoundF32(x []float64) {
	for i, v := range x {
		x[i] = float64(float32(v))
	}
}

// RoundF32Sparse rounds a sparse vector's values to float32 precision.
func RoundF32Sparse(v *sparse.Vector) {
	for i, val := range v.Value {
		v.Value[i] = float64(float32(val))
	}
	// float32 rounding cannot produce new zeros from nonzeros except for
	// subnormal underflow; drop those to preserve the no-stored-zeros
	// invariant.
	kept := 0
	for i := range v.Value {
		if v.Value[i] != 0 {
			v.Index[kept] = v.Index[i]
			v.Value[kept] = v.Value[i]
			kept++
		}
	}
	v.Index = v.Index[:kept]
	v.Value = v.Value[:kept]
}
