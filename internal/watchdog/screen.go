// Contribution screening: per-rank outlier detection over the vectors that
// enter a consensus reduce. The watchdog's divergence monitor judges the
// AGGREGATE after the fact; the screen judges each CONTRIBUTION before it
// is summed, which is what Byzantine tolerance needs — a poisoned w_i must
// be attributable to its sender, and by the time it is inside Σw it no
// longer is.
//
// The detector is a self-baseline: for every rank it tracks exponential
// moving averages of the contribution norm ‖v‖ and the step-to-step change
// ‖v − v_prev‖, and flags an observation that exceeds Factor× either
// baseline. The Δ-norm term is the load-bearing one for sign-flip attacks,
// which preserve ‖v‖ exactly but jump ‖v − v_prev‖ to ≈2‖v‖. Flagged
// observations do NOT update the baselines — otherwise a persistent
// attacker would drag its own baseline up until it passed — and a clean
// observation resets the strike count, so isolated numerical spikes never
// accumulate into a quarantine.
package watchdog

import (
	"errors"
	"fmt"
	"math"

	"psrahgadmm/internal/sparse"
)

// ErrQuorumLost is the sentinel wrapped by every "robust quorum
// unreachable" abort: more ranks are quarantined than the robust
// aggregator can tolerate, so continuing would let the remaining faulty
// minority dominate the trim. errors.Is distinguishes it from divergence
// and infrastructure failures (exit code 6 in psra-worker).
var ErrQuorumLost = errors.New("watchdog: robust quorum unreachable")

// QuorumError reports a lost robust quorum: how many ranks are quarantined
// against a tolerance of f. errors.Is(err, ErrQuorumLost) matches.
type QuorumError struct {
	Quarantined int
	F           int
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("watchdog: %d ranks quarantined exceeds the robust tolerance f=%d", e.Quarantined, e.F)
}

func (e *QuorumError) Unwrap() error { return ErrQuorumLost }

// ScreenConfig tunes the contribution screen. The zero value disables it;
// set Enabled to get the defaults.
type ScreenConfig struct {
	// Enabled turns screening on. Off by default: the screen walks every
	// contribution each round, work the zero-alloc fast path should not
	// pay unless asked.
	Enabled bool
	// Warmup is how many clean observations per rank build the baseline
	// before anything can flag. Default 3.
	Warmup int
	// Factor is the outlier threshold: an observation flags when its norm
	// or Δ-norm exceeds Factor× the corresponding EWMA baseline. Default 8.
	Factor float64
	// Alpha is the EWMA smoothing weight on the newest clean observation.
	// Default 0.25.
	Alpha float64
	// Strikes is how many CONSECUTIVE flagged observations quarantine a
	// rank. Default 2: a single spike (a straggler's stale burst, an
	// unlucky numeric step) is forgiven, a sustained pattern is not.
	Strikes int
}

// Fill returns cfg with defaults applied.
func (c ScreenConfig) Fill() ScreenConfig {
	if c.Warmup <= 0 {
		c.Warmup = 3
	}
	if c.Factor <= 0 {
		c.Factor = 8
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.25
	}
	if c.Strikes <= 0 {
		c.Strikes = 2
	}
	return c
}

// Validate rejects nonsensical explicit settings.
func (c ScreenConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Warmup < 0 {
		return fmt.Errorf("watchdog: screen Warmup %d negative", c.Warmup)
	}
	if c.Factor < 0 {
		return fmt.Errorf("watchdog: screen Factor %v negative", c.Factor)
	}
	if c.Factor > 0 && c.Factor <= 1 {
		return fmt.Errorf("watchdog: screen Factor %v must exceed 1 (below the baseline flags everything)", c.Factor)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("watchdog: screen Alpha %v outside [0, 1]", c.Alpha)
	}
	if c.Strikes < 0 {
		return fmt.Errorf("watchdog: screen Strikes %d negative", c.Strikes)
	}
	return nil
}

// screenRank is one rank's baseline state. prevIdx/prevVal (sparse) and
// prevDense hold the last CLEAN contribution for the Δ-norm; the slices
// are retained and reused, so a warmed steady state observes without
// allocating.
type screenRank struct {
	normEWMA  float64
	deltaEWMA float64
	clean     int // clean observations so far (baseline maturity)
	strikes   int // consecutive flagged observations
	prevIdx   []int32
	prevVal   []float64
	prevDense []float64
	havePrev  bool
}

// Screen is a per-run contribution screen. Observations for DISTINCT ranks
// may run concurrently (each touches only its own rank's state); two
// observations for the same rank must not.
type Screen struct {
	cfg   ScreenConfig
	ranks []screenRank
}

// NewScreen builds a screen for a world of the given size; nil when
// cfg.Enabled is false, and every method on a nil Screen is a cheap no-op.
func NewScreen(cfg ScreenConfig, world int) *Screen {
	if !cfg.Enabled {
		return nil
	}
	return &Screen{cfg: cfg.Fill(), ranks: make([]screenRank, world)}
}

// tiny floors the EWMA baselines: a converged run's Δ-norm approaches 0,
// and any nonzero step would otherwise look like an outlier against a
// vanishing baseline.
const screenTiny = 1e-9

// ObserveSparse screens one sparse contribution and reports whether it was
// flagged as an outlier. A flagged contribution does not update the
// baseline or the stored previous vector.
func (s *Screen) ObserveSparse(rank int, v *sparse.Vector) bool {
	if s == nil || rank < 0 || rank >= len(s.ranks) {
		return false
	}
	st := &s.ranks[rank]
	norm := math.Sqrt(v.Nrm2Sq())
	delta := norm
	if st.havePrev {
		delta = math.Sqrt(sparseDeltaSq(v, st.prevIdx, st.prevVal))
	}
	if s.judge(st, norm, delta) {
		return true
	}
	st.prevIdx = append(st.prevIdx[:0], v.Index...)
	st.prevVal = append(st.prevVal[:0], v.Value...)
	st.havePrev = true
	return false
}

// ObserveDense screens one dense contribution; semantics match
// ObserveSparse.
func (s *Screen) ObserveDense(rank int, x []float64) bool {
	if s == nil || rank < 0 || rank >= len(s.ranks) {
		return false
	}
	st := &s.ranks[rank]
	var normSq, deltaSq float64
	if st.havePrev && len(st.prevDense) == len(x) {
		for i, v := range x {
			normSq += v * v
			d := v - st.prevDense[i]
			deltaSq += d * d
		}
	} else {
		for _, v := range x {
			normSq += v * v
		}
		deltaSq = normSq
	}
	norm, delta := math.Sqrt(normSq), math.Sqrt(deltaSq)
	if s.judge(st, norm, delta) {
		return true
	}
	st.prevDense = append(st.prevDense[:0], x...)
	st.havePrev = true
	return false
}

// judge applies the outlier rule and maintains the baseline. It returns
// true for a flagged observation (strike recorded, baseline untouched).
// Non-finite norms always flag — they would poison the EWMA otherwise.
func (s *Screen) judge(st *screenRank, norm, delta float64) bool {
	nonFinite := math.IsNaN(norm) || math.IsInf(norm, 0) || math.IsNaN(delta) || math.IsInf(delta, 0)
	mature := st.clean >= s.cfg.Warmup
	if nonFinite || (mature &&
		(norm > s.cfg.Factor*maxf(st.normEWMA, screenTiny) ||
			delta > s.cfg.Factor*maxf(st.deltaEWMA, screenTiny))) {
		st.strikes++
		return true
	}
	st.strikes = 0
	a := s.cfg.Alpha
	if st.clean == 0 {
		st.normEWMA, st.deltaEWMA = norm, delta
	} else {
		st.normEWMA += a * (norm - st.normEWMA)
		st.deltaEWMA += a * (delta - st.deltaEWMA)
	}
	st.clean++
	return false
}

// Strikes returns rank's consecutive-flag count — the quarantine trigger
// compares it against ScreenConfig.Strikes.
func (s *Screen) Strikes(rank int) int {
	if s == nil || rank < 0 || rank >= len(s.ranks) {
		return 0
	}
	return s.ranks[rank].strikes
}

// StrikeLimit returns the configured consecutive-flag quarantine
// threshold (0 on a nil screen).
func (s *Screen) StrikeLimit() int {
	if s == nil {
		return 0
	}
	return s.cfg.Strikes
}

// Reset clears one rank's baseline and strikes. Call on rejoin or
// re-admission: the returning state is a different regime and must earn a
// fresh baseline.
func (s *Screen) Reset(rank int) {
	if s == nil || rank < 0 || rank >= len(s.ranks) {
		return
	}
	st := &s.ranks[rank]
	st.normEWMA, st.deltaEWMA = 0, 0
	st.clean, st.strikes = 0, 0
	st.prevIdx, st.prevVal = st.prevIdx[:0], st.prevVal[:0]
	st.prevDense = st.prevDense[:0]
	st.havePrev = false
}

// sparseDeltaSq computes ‖v − prev‖² by merge-walking the two sorted
// supports without materializing the difference.
func sparseDeltaSq(v *sparse.Vector, prevIdx []int32, prevVal []float64) float64 {
	sum := 0.0
	i, j := 0, 0
	for i < len(v.Index) && j < len(prevIdx) {
		switch {
		case v.Index[i] < prevIdx[j]:
			sum += v.Value[i] * v.Value[i]
			i++
		case v.Index[i] > prevIdx[j]:
			sum += prevVal[j] * prevVal[j]
			j++
		default:
			d := v.Value[i] - prevVal[j]
			sum += d * d
			i++
			j++
		}
	}
	for ; i < len(v.Index); i++ {
		sum += v.Value[i] * v.Value[i]
	}
	for ; j < len(prevIdx); j++ {
		sum += prevVal[j] * prevVal[j]
	}
	return sum
}
