package collective

import (
	"errors"
	"strings"
	"testing"
	"time"

	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

func TestRecvRetryOutwaitsDelay(t *testing.T) {
	fab := transport.NewChanFabric(2)
	defer fab.Close()
	go func() {
		time.Sleep(60 * time.Millisecond)
		fab.Endpoint(1).Send(0, wire.Control(9, 7))
	}()
	pol := RetryPolicy{Attempts: 6, BaseDelay: 10 * time.Millisecond}
	m, err := RecvRetry(fab.Endpoint(0), 1, 9, pol)
	if err != nil {
		t.Fatalf("RecvRetry should outlast the delay: %v", err)
	}
	if m.Ints[0] != 7 {
		t.Fatalf("wrong payload: %+v", m)
	}
}

// TestJitteredBackoffBounds pins the decorrelated-jitter envelope: every
// wait stays within [delay(attempt)/2, MaxDelay], so a budget sized
// against the deterministic schedule still holds to within 2×, and the
// draws actually vary — the whole point of jitter.
func TestJitteredBackoffBounds(t *testing.T) {
	pol := RetryPolicy{
		Attempts:  6,
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  50 * time.Millisecond,
		Jitter:    true,
	}.fill()
	distinct := make(map[time.Duration]bool)
	for trial := 0; trial < 200; trial++ {
		var prev time.Duration
		for attempt := 0; attempt < pol.Attempts; attempt++ {
			d := pol.wait(attempt, prev)
			lo, hi := pol.delay(attempt)/2, pol.MaxDelay
			if d < lo || d > hi {
				t.Fatalf("attempt %d: wait %v outside [%v, %v]", attempt, d, lo, hi)
			}
			prev = d
			distinct[d] = true
		}
	}
	if len(distinct) < 10 {
		t.Fatalf("jitter produced only %d distinct waits across 200 trials", len(distinct))
	}
	// Without Jitter the schedule is exactly the deterministic one.
	det := RetryPolicy{Attempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}.fill()
	for attempt := 0; attempt < det.Attempts; attempt++ {
		if det.wait(attempt, 0) != det.delay(attempt) {
			t.Fatalf("attempt %d: non-jittered wait diverged from schedule", attempt)
		}
	}
}

func TestRecvRetryBudgetExhaustion(t *testing.T) {
	fab := transport.NewChanFabric(2)
	defer fab.Close()
	pol := RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond}
	_, err := RecvRetry(fab.Endpoint(0), 1, 9, pol)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
}

func TestRecvRetryFastFailsOnDeath(t *testing.T) {
	fab := transport.NewFaultFabric(transport.NewChanFabric(2), transport.FaultPlan{Seed: 1})
	defer fab.Close()
	fab.Kill(1)
	start := time.Now()
	pol := RetryPolicy{Attempts: 10, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	_, err := RecvRetry(fab.Endpoint(0), 1, 9, pol)
	var pd *transport.PeerDownError
	if !errors.As(err, &pd) || pd.Peer != 1 {
		t.Fatalf("want PeerDownError{1}, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("death must short-circuit the backoff, not exhaust it")
	}
}

// TestSendAckRecoversFromPartition drops the first transmissions in a
// transient partition; SendAck's resend loop delivers once the partition
// heals, and the receiver's ack stops the resends.
func TestSendAckRecoversFromPartition(t *testing.T) {
	fab := transport.NewFaultFabric(transport.NewChanFabric(2), transport.FaultPlan{Seed: 1})
	defer fab.Close()
	fab.Partition(0, 1)
	go func() {
		time.Sleep(80 * time.Millisecond)
		fab.Heal(0, 1)
	}()
	pol := RetryPolicy{Attempts: 8, BaseDelay: 20 * time.Millisecond}
	done := make(chan error, 1)
	go func() { done <- SendAck(fab.Endpoint(0), 1, wire.Control(33, 5), pol) }()
	m, err := RecvAck(fab.Endpoint(1), 0, 33, pol)
	if err != nil {
		t.Fatalf("RecvAck: %v", err)
	}
	if m.Ints[0] != 5 {
		t.Fatalf("wrong payload: %+v", m)
	}
	if err := <-done; err != nil {
		t.Fatalf("SendAck: %v", err)
	}
	if fab.InjectedDrops() == 0 {
		t.Fatal("test never exercised the drop path")
	}
}

func TestSendAckReportsDeadPeer(t *testing.T) {
	fab := transport.NewFaultFabric(transport.NewChanFabric(2), transport.FaultPlan{Seed: 1})
	defer fab.Close()
	fab.Kill(1)
	pol := RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond}
	err := SendAck(fab.Endpoint(0), 1, wire.Control(33, 5), pol)
	var pd *transport.PeerDownError
	if !errors.As(err, &pd) || pd.Peer != 1 {
		t.Fatalf("want PeerDownError{1}, got %v", err)
	}
}

// TestSendAckToleratesLostAck pins the give-up rule: when the budget runs
// out against a peer that is alive but never acks (it consumed the data
// with a plain Recv), the probe finds it alive and the send is reported
// successful rather than the peer executed.
func TestSendAckToleratesLostAck(t *testing.T) {
	fab := transport.NewChanFabric(2)
	defer fab.Close()
	got := make(chan wire.Message, 1)
	go func() {
		m, _ := fab.Endpoint(1).Recv(0, 33)
		got <- m
	}()
	pol := RetryPolicy{Attempts: 2, BaseDelay: 10 * time.Millisecond}
	if err := SendAck(fab.Endpoint(0), 1, wire.Control(33, 5), pol); err != nil {
		t.Fatalf("live-but-silent peer must not fail the send: %v", err)
	}
	m := <-got
	if m.Ints[0] != 5 {
		t.Fatalf("wrong payload: %+v", m)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Attempts: 6}
	want := []time.Duration{10, 20, 40, 50, 50}
	for i, w := range want {
		if d := p.delay(i); d != w*time.Millisecond {
			t.Fatalf("delay(%d) = %v, want %v", i, d, w*time.Millisecond)
		}
	}
}

// TestSendAckRecoversFromCorruption drives the ack protocol through a
// fabric that bit-flips frames: every detected corruption must behave like
// a lost frame (resend), and the delivered payload must equal the sent one.
func TestSendAckRecoversFromCorruption(t *testing.T) {
	fab := transport.NewFaultFabric(transport.NewChanFabric(2), transport.FaultPlan{Seed: 3, CorruptProb: 0.35})
	defer fab.Close()
	pol := RetryPolicy{Attempts: 12, BaseDelay: 5 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	var corrupted int64
	for i := 0; i < 15; i++ {
		tag := int32(100 + i)
		payload := []float64{float64(i), -float64(i), 0.25 * float64(i)}
		done := make(chan error, 1)
		go func() { done <- SendAck(fab.Endpoint(0), 1, wire.DenseMsg(tag, payload), pol) }()
		m, err := RecvAck(fab.Endpoint(1), 0, tag, pol)
		if err != nil {
			t.Fatalf("round %d: RecvAck: %v", i, err)
		}
		if len(m.Dense) != 3 || m.Dense[0] != payload[0] || m.Dense[1] != payload[1] || m.Dense[2] != payload[2] {
			t.Fatalf("round %d: payload corrupted in delivery: %v", i, m.Dense)
		}
		if err := <-done; err != nil {
			t.Fatalf("round %d: SendAck: %v", i, err)
		}
	}
	corrupted = fab.InjectedCorruptions()
	if corrupted == 0 {
		t.Fatal("CorruptProb=0.35 over 40 ack rounds injected nothing")
	}
	if fab.SilentCorruptions() != 0 {
		t.Fatalf("%d silent corruptions delivered", fab.SilentCorruptions())
	}
	t.Logf("recovered from %d injected corruptions", corrupted)
}

// TestRecvRetryReportsCorruptExhaustion checks the typed trail when every
// attempt is corrupted: the error wraps ErrUnavailable AND mentions the
// corrupt cause, so callers can distinguish a poisoned link from silence.
func TestRecvRetryReportsCorruptExhaustion(t *testing.T) {
	fab := transport.NewFaultFabric(transport.NewChanFabric(2), transport.FaultPlan{Seed: 1})
	defer fab.Close()
	pol := RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond}
	// Arm three times: each resend-less attempt consumes one corrupt event.
	for i := 0; i < 3; i++ {
		fab.ArmCorrupt(0)
		if err := fab.Endpoint(0).Send(1, wire.Control(77, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	_, err := RecvRetry(fab.Endpoint(1), 0, 77, pol)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error %q does not mention corruption", err)
	}
}
