package psrahgadmm

import (
	"math"
	"testing"
)

// TestPublicAPITrainRoundTrip exercises the documented public surface
// end-to-end: generate → train → inspect history and final model.
func TestPublicAPITrainRoundTrip(t *testing.T) {
	train, test, err := Generate(News20Like(0.0005, 42))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Algorithm: PSRAHGADMM,
		Topo:      Topology{Nodes: 2, WorkersPerNode: 2},
		Rho:       1, Lambda: 1, MaxIter: 20,
	}
	res, err := Train(cfg, train, RunOptions{Test: test})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 20 {
		t.Fatalf("history length %d", len(res.History))
	}
	if res.FinalObjective() >= res.History[0].Objective {
		t.Fatal("objective did not improve")
	}
	if math.IsNaN(res.FinalAccuracy()) || res.FinalAccuracy() <= 0.5 {
		t.Fatalf("accuracy %v", res.FinalAccuracy())
	}
	if len(res.Z) != train.Dim() {
		t.Fatalf("final iterate length %d", len(res.Z))
	}
}

// TestPublicAPIAllAlgorithms smoke-tests every registered algorithm id.
func TestPublicAPIAllAlgorithms(t *testing.T) {
	train, _, err := Generate(News20Like(0.0005, 7))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's six variants plus the registered strategy compositions.
	if len(Algorithms()) < 6 {
		t.Fatalf("expected at least the paper's 6 algorithms, got %d", len(Algorithms()))
	}
	if len(Algorithms()) != len(Variants()) {
		t.Fatalf("Algorithms()/Variants() length mismatch: %d vs %d",
			len(Algorithms()), len(Variants()))
	}
	for _, v := range Variants() {
		if v.Consensus == "" || v.Sync == "" || v.Codec == "" || v.Description == "" {
			t.Fatalf("%s: incomplete variant %+v", v.Name, v)
		}
	}
	for _, alg := range Algorithms() {
		cfg := Config{
			Algorithm: alg,
			Topo:      Topology{Nodes: 2, WorkersPerNode: 2},
			Rho:       1, Lambda: 1, MaxIter: 8,
		}
		if _, err := Train(cfg, train, RunOptions{}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

// TestPublicAPIConsensusModes covers both PSRA-HGADMM readings.
func TestPublicAPIConsensusModes(t *testing.T) {
	train, _, err := Generate(News20Like(0.0005, 9))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ConsensusMode{ConsensusGlobal, ConsensusGroup} {
		cfg := Config{
			Algorithm:      PSRAHGADMM,
			Consensus:      mode,
			Topo:           Topology{Nodes: 4, WorkersPerNode: 1},
			GroupThreshold: 2,
			Rho:            1, Lambda: 1, MaxIter: 10,
		}
		res, err := Train(cfg, train, RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.FinalObjective() >= res.History[0].Objective {
			t.Fatalf("%s: no progress", mode)
		}
	}
}

// TestPublicAPIReferenceOptimum checks f* is a lower bound the engine
// approaches.
func TestPublicAPIReferenceOptimum(t *testing.T) {
	train, _, err := Generate(News20Like(0.0005, 4))
	if err != nil {
		t.Fatal(err)
	}
	fstar, z, err := ReferenceOptimum(train, 1, 1, 80)
	if err != nil {
		t.Fatal(err)
	}
	if fstar <= 0 || len(z) != train.Dim() {
		t.Fatalf("f* = %v", fstar)
	}
	cfg := Config{
		Algorithm: PSRAADMM,
		Topo:      Topology{Nodes: 2, WorkersPerNode: 1},
		Rho:       1, Lambda: 1, MaxIter: 60,
	}
	res, err := Train(cfg, train, RunOptions{FStar: fstar, HaveFStar: true})
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	if math.IsNaN(last.RelError) || last.RelError > 0.05 {
		t.Fatalf("relative error %v did not approach f*", last.RelError)
	}
}

// TestDatasetPresets sanity-checks the exported preset constructors.
func TestDatasetPresets(t *testing.T) {
	for _, mk := range []func(float64, int64) SynthConfig{News20Like, WebspamLike, URLLike} {
		cfg := mk(0.0005, 1)
		train, test, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if train.Rows() == 0 || test.Rows() == 0 || train.Dim() == 0 {
			t.Fatalf("%s: degenerate shape", cfg.Name)
		}
	}
}

// TestCostModelExport checks the exported cost model is usable.
func TestCostModelExport(t *testing.T) {
	c := Tianhe2Like()
	if c.InterBeta <= c.IntraBeta {
		t.Fatal("interconnect should be slower than the bus")
	}
	scaled := c.ScaleBandwidth(2)
	if scaled.InterBeta != 2*c.InterBeta {
		t.Fatal("ScaleBandwidth wrong")
	}
}
