package core

import (
	"errors"
	"testing"

	"psrahgadmm/internal/checkpoint"
	"psrahgadmm/internal/metrics"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/watchdog"
)

// TestCorruptChaosDetectedAndRetried is the tentpole's engine-level
// acceptance: under seeded random frame corruption the run must NEVER be
// silently wrong. With the exact codec that is a bit-level statement — a
// detected-and-dropped frame aborts the round attempt, the retry re-ships
// everything under a fresh tag window, failed attempts charge no virtual
// time, so the chaos run's history must be BIT-IDENTICAL to the fault-free
// run's. CorruptRounds > 0 proves the injection actually fired (the test
// would pass vacuously otherwise).
func TestCorruptChaosDetectedAndRetried(t *testing.T) {
	train, test := testData(t, 160)
	for _, alg := range []Algorithm{PSRAHGADMM, PSRAHGADMMSharded} {
		t.Run(string(alg), func(t *testing.T) {
			mk := func() Config {
				cfg := baseConfig(alg, 3, 2)
				cfg.MaxIter = 25
				cfg.GroupThreshold = 2
				return cfg
			}
			clean, err := Run(mk(), train, RunOptions{Test: test})
			if err != nil {
				t.Fatal(err)
			}

			cfg := mk()
			cfg.Faults = &transport.FaultPlan{Seed: 41, CorruptProb: 0.05}
			health := metrics.NewHealth(cfg.Topo.Size())
			chaos, err := Run(cfg, train, RunOptions{Test: test, Health: health})
			if err != nil {
				t.Fatalf("corruption chaos aborted: %v", err)
			}
			if health.CorruptRounds.Get() == 0 {
				t.Fatal("no corrupt round was ever retried — the injection never fired")
			}
			if len(chaos.History) != len(clean.History) {
				t.Fatalf("history lengths differ: chaos %d, clean %d", len(chaos.History), len(clean.History))
			}
			for i := range clean.History {
				if !statBitEqual(chaos.History[i], clean.History[i]) {
					t.Fatalf("iteration %d diverged under corruption:\nchaos %+v\nclean %+v",
						i, chaos.History[i], clean.History[i])
				}
			}
			t.Logf("%s: %d corrupt rounds retried, history bit-identical", alg, health.CorruptRounds.Get())
		})
	}
}

// TestCorruptAtIterationFiresOnce pins the deterministic schedule: an armed
// corruption at one iteration boundary produces exactly one retried round,
// and the history still matches the clean run bit for bit.
func TestCorruptAtIterationFiresOnce(t *testing.T) {
	train, _ := testData(t, 120)
	mk := func() Config {
		cfg := baseConfig(PSRAHGADMM, 3, 2)
		cfg.MaxIter = 12
		return cfg
	}
	clean, err := Run(mk(), train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mk()
	cfg.Faults = &transport.FaultPlan{Seed: 5, CorruptAtIteration: map[int]int{0: 3}}
	health := metrics.NewHealth(cfg.Topo.Size())
	res, err := Run(cfg, train, RunOptions{Health: health})
	if err != nil {
		t.Fatal(err)
	}
	if got := health.CorruptRounds.Get(); got != 1 {
		t.Fatalf("CorruptRounds = %d, want exactly 1", got)
	}
	for i := range clean.History {
		if !statBitEqual(res.History[i], clean.History[i]) {
			t.Fatalf("iteration %d differs after the armed corruption", i)
		}
	}
}

// TestNaNInjectionRollsBackAndConverges is the rollback half of the
// tentpole: a NaN poisoned into one rank's local solve trips the watchdog
// the same iteration, the run rolls every rank back to the last good
// checkpoint, and — because the injection fires once — the replay is clean.
// The resume machinery is bit-exact, so the final history must equal the
// fault-free run's, with the rollback recorded in Result.
func TestNaNInjectionRollsBackAndConverges(t *testing.T) {
	train, test := testData(t, 160)
	mk := func() Config {
		cfg := baseConfig(PSRAHGADMM, 3, 2)
		cfg.MaxIter = 20
		cfg.Watchdog = watchdog.Config{Enabled: true}
		return cfg
	}
	clean, err := Run(mk(), train, RunOptions{Test: test})
	if err != nil {
		t.Fatal(err)
	}

	cfg := mk()
	cfg.Faults = &transport.FaultPlan{Seed: 3, NaNAtIteration: map[int]int{1: 12}}
	health := metrics.NewHealth(cfg.Topo.Size())
	res, err := Run(cfg, train, RunOptions{
		Test:       test,
		Health:     health,
		Checkpoint: &CheckpointOptions{Store: checkpoint.NewMemStore(), Every: 5},
	})
	if err != nil {
		t.Fatalf("NaN injection was not recovered: %v", err)
	}
	if len(res.Rollbacks) != 1 {
		t.Fatalf("Rollbacks = %+v, want exactly one", res.Rollbacks)
	}
	rb := res.Rollbacks[0]
	if rb.TripIter != 12 || rb.ToIter != 10 {
		t.Fatalf("rolled back %d → %d, want 12 → 10", rb.TripIter, rb.ToIter)
	}
	if rb.Reason == "" {
		t.Fatal("rollback reason not recorded")
	}
	if health.WatchdogTrips.Get() != 1 || health.Rollbacks.Get() != 1 {
		t.Fatalf("health: trips=%d rollbacks=%d, want 1/1",
			health.WatchdogTrips.Get(), health.Rollbacks.Get())
	}
	if len(res.History) != cfg.MaxIter {
		t.Fatalf("history length %d after rollback, want %d", len(res.History), cfg.MaxIter)
	}
	for i := range clean.History {
		if !statBitEqual(res.History[i], clean.History[i]) {
			t.Fatalf("iteration %d differs from the fault-free run after rollback:\ngot  %+v\nwant %+v",
				i, res.History[i], clean.History[i])
		}
	}
}

// TestWatchdogAbortsWithoutCheckpoint: with no store to roll back to, a
// trip is a typed abort — errors.Is(err, watchdog.ErrDiverged) — carrying
// the partial history up to the poisoned iteration.
func TestWatchdogAbortsWithoutCheckpoint(t *testing.T) {
	train, _ := testData(t, 120)
	cfg := baseConfig(PSRAHGADMM, 3, 2)
	cfg.MaxIter = 20
	cfg.Watchdog = watchdog.Config{Enabled: true}
	cfg.Faults = &transport.FaultPlan{Seed: 3, NaNAtIteration: map[int]int{0: 7}}
	res, err := Run(cfg, train, RunOptions{})
	if err == nil {
		t.Fatal("poisoned run succeeded with nowhere to roll back to")
	}
	if !errors.Is(err, watchdog.ErrDiverged) {
		t.Fatalf("abort is not typed as divergence: %v", err)
	}
	if res == nil || len(res.History) != 8 {
		t.Fatalf("partial history missing or wrong length: %+v", res)
	}
}

// TestWatchdogRollbackBudgetExhausted drives repeated trips (a sub-1
// residual factor re-trips every time the window refills) and asserts the
// detect → rollback → abort ladder: exactly MaxRollbacks rollbacks are
// attempted, then the next trip becomes the typed failure.
func TestWatchdogRollbackBudgetExhausted(t *testing.T) {
	train, _ := testData(t, 120)
	cfg := baseConfig(PSRAHGADMM, 3, 2)
	cfg.MaxIter = 60
	cfg.Watchdog = watchdog.Config{
		Enabled:        true,
		Window:         4,
		ResidualFactor: 0.5, // anything above half the recent floor "explodes"
		MaxRollbacks:   2,
	}
	health := metrics.NewHealth(cfg.Topo.Size())
	res, err := Run(cfg, train, RunOptions{
		Health:     health,
		Checkpoint: &CheckpointOptions{Store: checkpoint.NewMemStore(), Every: 2},
	})
	if err == nil {
		t.Fatal("run succeeded despite a watchdog that trips on any healthy residual")
	}
	if !errors.Is(err, watchdog.ErrDiverged) {
		t.Fatalf("exhausted-rollback abort is not typed as divergence: %v", err)
	}
	if len(res.Rollbacks) != 2 {
		t.Fatalf("performed %d rollbacks, want exactly MaxRollbacks=2: %+v", len(res.Rollbacks), res.Rollbacks)
	}
	if health.WatchdogTrips.Get() != 3 || health.Rollbacks.Get() != 2 {
		t.Fatalf("health: trips=%d rollbacks=%d, want 3/2",
			health.WatchdogTrips.Get(), health.Rollbacks.Get())
	}
}

// TestWatchdogCleanRunUntripped: an enabled watchdog on a healthy run is
// pure observation — no trips, no rollbacks, history identical to the
// watchdog-less run.
func TestWatchdogCleanRunUntripped(t *testing.T) {
	train, test := testData(t, 160)
	mk := func(wd bool) Config {
		cfg := baseConfig(PSRAHGADMM, 3, 2)
		cfg.MaxIter = 25
		cfg.AdaptiveRho = true
		if wd {
			cfg.Watchdog = watchdog.Config{Enabled: true}
		}
		return cfg
	}
	plain, err := Run(mk(false), train, RunOptions{Test: test})
	if err != nil {
		t.Fatal(err)
	}
	health := metrics.NewHealth(6)
	watched, err := Run(mk(true), train, RunOptions{Test: test, Health: health})
	if err != nil {
		t.Fatal(err)
	}
	if health.WatchdogTrips.Get() != 0 || len(watched.Rollbacks) != 0 {
		t.Fatalf("healthy run tripped: trips=%d rollbacks=%+v",
			health.WatchdogTrips.Get(), watched.Rollbacks)
	}
	for i := range plain.History {
		if !statBitEqual(watched.History[i], plain.History[i]) {
			t.Fatalf("watchdog perturbed iteration %d", i)
		}
	}
}
