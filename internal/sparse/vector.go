// Package sparse implements the sparse linear-algebra substrate for
// PSRA-HGADMM: compressed sparse vectors, CSR matrices, and the block
// slicing / merging primitives the sparse collectives (Ring-Allreduce and
// PSR-Allreduce) are built on.
//
// Sparse vectors keep indices strictly increasing. Every constructor and
// mutator preserves that invariant, and Vector.Check verifies it; the
// property tests in this package exercise the invariant under random merges
// and slices.
package sparse

import (
	"fmt"
	"slices"
	"sort"
)

// Vector is a sparse float64 vector of logical length Dim with nonzeros at
// strictly increasing Index positions. A zero Vector is a valid empty vector
// of dimension 0.
type Vector struct {
	Dim   int
	Index []int32
	Value []float64
}

// NewVector returns an empty sparse vector of dimension dim with capacity
// for nnz nonzeros.
func NewVector(dim, nnz int) *Vector {
	return &Vector{
		Dim:   dim,
		Index: make([]int32, 0, nnz),
		Value: make([]float64, 0, nnz),
	}
}

// FromDense compresses a dense slice, dropping exact zeros.
func FromDense(x []float64) *Vector {
	v := NewVector(len(x), 0)
	for i, xv := range x {
		if xv != 0 {
			v.Index = append(v.Index, int32(i))
			v.Value = append(v.Value, xv)
		}
	}
	return v
}

// FromMap builds a sparse vector from an index→value map, dropping zeros
// and sorting indices.
func FromMap(dim int, m map[int32]float64) *Vector {
	v := NewVector(dim, len(m))
	for i, val := range m {
		if val != 0 {
			v.Index = append(v.Index, i)
			v.Value = append(v.Value, val)
		}
	}
	sort.Sort(byIndex{v})
	return v
}

type byIndex struct{ v *Vector }

func (s byIndex) Len() int           { return len(s.v.Index) }
func (s byIndex) Less(i, j int) bool { return s.v.Index[i] < s.v.Index[j] }
func (s byIndex) Swap(i, j int) {
	s.v.Index[i], s.v.Index[j] = s.v.Index[j], s.v.Index[i]
	s.v.Value[i], s.v.Value[j] = s.v.Value[j], s.v.Value[i]
}

// NNZ returns the number of stored nonzeros.
func (v *Vector) NNZ() int { return len(v.Index) }

// Check validates the structural invariants: parallel slices, indices
// strictly increasing and within [0, Dim), no stored zeros.
func (v *Vector) Check() error {
	if len(v.Index) != len(v.Value) {
		return fmt.Errorf("sparse: index/value length mismatch %d != %d", len(v.Index), len(v.Value))
	}
	prev := int32(-1)
	for k, i := range v.Index {
		if i <= prev {
			return fmt.Errorf("sparse: indices not strictly increasing at pos %d (%d <= %d)", k, i, prev)
		}
		if int(i) >= v.Dim {
			return fmt.Errorf("sparse: index %d out of range for dim %d", i, v.Dim)
		}
		if v.Value[k] == 0 {
			return fmt.Errorf("sparse: stored zero at pos %d (index %d)", k, i)
		}
		prev = i
	}
	return nil
}

// ToDense expands into a newly allocated dense slice of length Dim.
func (v *Vector) ToDense() []float64 {
	out := make([]float64, v.Dim)
	for k, i := range v.Index {
		out[i] = v.Value[k]
	}
	return out
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	out := &Vector{
		Dim:   v.Dim,
		Index: make([]int32, len(v.Index)),
		Value: make([]float64, len(v.Value)),
	}
	copy(out.Index, v.Index)
	copy(out.Value, v.Value)
	return out
}

// Append adds a nonzero at index i, which must be greater than every index
// already present. Zero values are ignored.
func (v *Vector) Append(i int32, val float64) {
	if val == 0 {
		return
	}
	if n := len(v.Index); n > 0 && v.Index[n-1] >= i {
		panic("sparse: Append indices must be strictly increasing")
	}
	if int(i) >= v.Dim {
		panic("sparse: Append index out of range")
	}
	v.Index = append(v.Index, i)
	v.Value = append(v.Value, val)
}

// Dot returns the inner product with a dense vector of length Dim.
func (v *Vector) Dot(dense []float64) float64 {
	if len(dense) != v.Dim {
		panic("sparse: Dot dimension mismatch")
	}
	var s float64
	for k, i := range v.Index {
		s += v.Value[k] * dense[i]
	}
	return s
}

// AddIntoDense accumulates alpha*v into the dense slice dst (length Dim).
func (v *Vector) AddIntoDense(dst []float64, alpha float64) {
	if len(dst) != v.Dim {
		panic("sparse: AddIntoDense dimension mismatch")
	}
	for k, i := range v.Index {
		dst[i] += alpha * v.Value[k]
	}
}

// Scale multiplies every stored value by alpha in place. Scaling by zero
// empties the vector (no stored zeros).
func (v *Vector) Scale(alpha float64) {
	if alpha == 0 {
		v.Index = v.Index[:0]
		v.Value = v.Value[:0]
		return
	}
	for k := range v.Value {
		v.Value[k] *= alpha
	}
}

// Nrm2Sq returns the squared Euclidean norm.
func (v *Vector) Nrm2Sq() float64 {
	var s float64
	for _, val := range v.Value {
		s += val * val
	}
	return s
}

// Slice returns the sub-vector covering dense positions [lo, hi), re-based
// so the result has Dim = hi-lo and indices in [0, hi-lo). This is the
// block-extraction primitive the sparse collectives use to ship one owned
// block. The returned vector shares no storage with v.
func (v *Vector) Slice(lo, hi int) *Vector {
	return v.SliceInto(nil, lo, hi)
}

// Range returns the storage positions [from, to) of v's entries with
// indices in the dense range [lo, hi) — the no-copy block view: the
// block's entries are v.Index[from:to] / v.Value[from:to] at their global
// indices. Two binary searches, no allocation; the sharded collectives use
// it to walk one block of a global-coordinate payload without re-basing.
func (v *Vector) Range(lo, hi int) (from, to int) {
	if lo < 0 || hi < lo || hi > v.Dim {
		panic("sparse: Range bounds out of range")
	}
	from = sort.Search(len(v.Index), func(k int) bool { return int(v.Index[k]) >= lo })
	to = from + sort.Search(len(v.Index)-from, func(k int) bool { return int(v.Index[from+k]) >= hi })
	return from, to
}

// Merge returns a + b, where both share the same Dim. Indices present in
// both are summed; sums that cancel to exactly zero are dropped.
func Merge(a, b *Vector) *Vector {
	return MergeInto(nil, a, b)
}

// Concat stitches re-based block vectors (as produced by Slice over
// consecutive chunks) back into one vector of dimension dim. offsets[i] is
// the dense position where blocks[i] begins; blocks must be non-overlapping
// and given in increasing offset order.
func Concat(dim int, offsets []int, blocks []*Vector) *Vector {
	return ConcatInto(nil, dim, offsets, blocks)
}

// Accumulator sums many sparse vectors of a fixed dimension without
// repeated merge allocations: it keeps a dense scratch plus a touched-index
// set. Intended for reduce fan-ins where dozens of sparse vectors with
// overlapping supports are combined.
type Accumulator struct {
	dim     int
	dense   []float64
	touched []int32
	seen    []bool
}

// NewAccumulator returns an empty accumulator of the given dimension.
func NewAccumulator(dim int) *Accumulator {
	return &Accumulator{
		dim:   dim,
		dense: make([]float64, dim),
		seen:  make([]bool, dim),
	}
}

// Add accumulates v (which must have matching dimension).
func (a *Accumulator) Add(v *Vector) {
	if v.Dim != a.dim {
		panic("sparse: Accumulator dimension mismatch")
	}
	for k, i := range v.Index {
		if !a.seen[i] {
			a.seen[i] = true
			a.touched = append(a.touched, i)
		}
		a.dense[i] += v.Value[k]
	}
}

// AddRange accumulates v's entries at storage positions [from, to),
// re-based by -base, into the accumulator. Companion of Vector.Range:
// together they fold one block of a global-coordinate vector into a
// block-width accumulator without materializing a re-based slice. The
// additions are the same dense[i] += value sequence Add performs on a
// SliceInto copy, so sums are bit-identical to the slice-then-Add path.
func (a *Accumulator) AddRange(v *Vector, from, to int, base int32) {
	for k := from; k < to; k++ {
		i := v.Index[k] - base
		if int(i) >= a.dim || i < 0 {
			panic("sparse: AddRange index out of accumulator range")
		}
		if !a.seen[i] {
			a.seen[i] = true
			a.touched = append(a.touched, i)
		}
		a.dense[i] += v.Value[k]
	}
}

// AddDense accumulates a dense slice of matching dimension.
func (a *Accumulator) AddDense(x []float64) {
	if len(x) != a.dim {
		panic("sparse: Accumulator dense dimension mismatch")
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		i32 := int32(i)
		if !a.seen[i32] {
			a.seen[i32] = true
			a.touched = append(a.touched, i32)
		}
		a.dense[i] += xv
	}
}

// Sum extracts the accumulated total as a sparse vector and resets the
// accumulator for reuse. Exact-zero sums are dropped.
func (a *Accumulator) Sum() *Vector {
	return a.SumInto(nil)
}

// SumInto is Sum writing into dst (allocated when nil, grown only when too
// small) so steady-state reduce fan-ins extract their total without
// allocating. dst is reset to the accumulator's dimension first.
func (a *Accumulator) SumInto(dst *Vector) *Vector {
	slices.Sort(a.touched)
	if dst == nil {
		dst = NewVector(a.dim, len(a.touched))
	} else {
		dst.Reset(a.dim)
	}
	for _, i := range a.touched {
		if v := a.dense[i]; v != 0 {
			dst.Index = append(dst.Index, i)
			dst.Value = append(dst.Value, v)
		}
		a.dense[i] = 0
		a.seen[i] = false
	}
	a.touched = a.touched[:0]
	return dst
}

// Reset empties the accumulator and re-dimensions it, growing the dense
// scratch only when dim exceeds its capacity. Used when a pooled
// accumulator is re-targeted (e.g. after an elastic regroup changes the
// block layout).
func (a *Accumulator) Reset(dim int) {
	for _, i := range a.touched {
		a.dense[i] = 0
		a.seen[i] = false
	}
	a.touched = a.touched[:0]
	if dim == a.dim {
		return
	}
	if cap(a.dense) < dim {
		a.dense = make([]float64, dim)
		a.seen = make([]bool, dim)
	} else {
		// Shrinking then regrowing within capacity: clear the newly
		// exposed tail, which a smaller dim's Sum never visited.
		grown := a.dense[:dim]
		seen := a.seen[:dim]
		for i := a.dim; i < dim; i++ {
			grown[i] = 0
			seen[i] = false
		}
		a.dense = grown
		a.seen = seen
	}
	a.dim = dim
	a.dense = a.dense[:dim]
	a.seen = a.seen[:dim]
}
