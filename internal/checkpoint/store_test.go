package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestDirStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir, "rank-0.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load(); err != nil || ok {
		t.Fatalf("fresh store: ok=%v err=%v", ok, err)
	}
	if err := s.Save([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte("second")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.Load()
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(data, []byte("second")) {
		t.Fatalf("got %q", data)
	}
	// No temp litter after successful saves.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "rank-0.ckpt" {
		t.Fatalf("unexpected directory contents: %v", ents)
	}
}

func TestDirStoreCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b")
	s, err := NewDirStore(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := s.Path(); got != filepath.Join(dir, "checkpoint.bin") {
		t.Fatalf("default name path: %s", got)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if _, ok, _ := s.Load(); ok {
		t.Fatal("empty store reported data")
	}
	blob := []byte{1, 2, 3}
	if err := s.Save(blob); err != nil {
		t.Fatal(err)
	}
	blob[0] = 9 // caller mutation must not leak in
	data, ok, _ := s.Load()
	if !ok || !bytes.Equal(data, []byte{1, 2, 3}) {
		t.Fatalf("got %v ok=%v", data, ok)
	}
	data[1] = 9 // nor out
	again, _, _ := s.Load()
	if !bytes.Equal(again, []byte{1, 2, 3}) {
		t.Fatalf("aliasing: %v", again)
	}
	if s.Saves() != 1 {
		t.Fatalf("saves = %d", s.Saves())
	}
}
