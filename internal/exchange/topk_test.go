package exchange

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"psrahgadmm/internal/raceflag"
	"psrahgadmm/internal/sparse"
)

// randVector builds a sparse vector of dimension dim with roughly nnz
// nonzeros drawn from a normal distribution.
func randVector(r *rand.Rand, dim, nnz int) *sparse.Vector {
	m := make(map[int32]float64, nnz)
	for len(m) < nnz {
		m[int32(r.Intn(dim))] = r.NormFloat64()
	}
	return sparse.FromMap(dim, m)
}

// mergeWithResidual returns v + st's residual, treating the not-yet-sized
// residual (before the first Encode) as empty.
func mergeWithResidual(v *sparse.Vector, st *State) *sparse.Vector {
	if st.Residual().Dim != v.Dim {
		return v.Clone()
	}
	return sparse.Merge(v, st.Residual())
}

// topKSupport returns the index set a deterministic top-k of v would keep:
// |value| strictly above the k-th largest magnitude, ties broken toward
// lower indices.
func topKSupport(v *sparse.Vector, k int) map[int32]bool {
	if v.NNZ() <= k {
		out := make(map[int32]bool, v.NNZ())
		for _, i := range v.Index {
			out[i] = true
		}
		return out
	}
	abs := make([]float64, v.NNZ())
	for i, val := range v.Value {
		abs[i] = math.Abs(val)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(abs)))
	theta := abs[k-1]
	gt := 0
	for _, val := range v.Value {
		if math.Abs(val) > theta {
			gt++
		}
	}
	ties := k - gt
	out := make(map[int32]bool, k)
	for i, idx := range v.Index {
		a := math.Abs(v.Value[i])
		if a > theta {
			out[idx] = true
		} else if a == theta && ties > 0 {
			out[idx] = true
			ties--
		}
	}
	return out
}

// TestTopKRoundTripProperty is the selection contract under random inputs:
// the encoded support is exactly the deterministic top-k of (v + residual),
// nnz never exceeds k, the structural invariants hold, and — for the exact
// kind with the undamped accumulator — encoded + residual reconstructs the
// merged input bit-for-bit (nothing the wire drops is ever lost).
func TestTopKRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const dim = 512
	st := NewState(TopK, 0)
	st.KMin, st.KMax, st.K = 8, 64, 32
	st.Decay = NoDecay // exact conservation needs the undamped residual
	for trial := 0; trial < 200; trial++ {
		v := randVector(r, dim, 8+r.Intn(120))
		// merged = v + residual BEFORE encoding mutates either.
		merged := mergeWithResidual(v, st)
		want := topKSupport(merged, st.K)

		st.Encode(v)
		if err := v.Check(); err != nil {
			t.Fatalf("trial %d: encoded vector invalid: %v", trial, err)
		}
		if err := st.Residual().Check(); err != nil {
			t.Fatalf("trial %d: residual invalid: %v", trial, err)
		}
		if v.NNZ() > st.K {
			t.Fatalf("trial %d: %d survivors exceed k=%d", trial, v.NNZ(), st.K)
		}
		for _, idx := range v.Index {
			if !want[idx] {
				t.Fatalf("trial %d: index %d survived but is not in top-k(v+residual)", trial, idx)
			}
		}
		if len(want) != v.NNZ() {
			t.Fatalf("trial %d: kept %d of the %d top-k coordinates", trial, v.NNZ(), len(want))
		}
		// Error-feedback conservation: encoded + residual == merged.
		back := sparse.Merge(v, st.Residual())
		if back.NNZ() != merged.NNZ() {
			t.Fatalf("trial %d: reconstruction nnz %d, merged %d", trial, back.NNZ(), merged.NNZ())
		}
		for i := range back.Index {
			if back.Index[i] != merged.Index[i] || back.Value[i] != merged.Value[i] {
				t.Fatalf("trial %d: reconstruction diverged at pos %d", trial, i)
			}
		}
	}
}

// TestTopKQ8ResidualCarriesQuantError pins the composed codec's residual
// semantics: after a topk-q8 encode, encoded + residual still equals the
// merged pre-encode contribution (the residual absorbs quantization error
// on kept coordinates, not just dropped mass).
func TestTopKQ8ResidualCarriesQuantError(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	st := NewState(TopKQ8, 0)
	st.KMin, st.KMax, st.K = 4, 32, 16
	st.Decay = NoDecay // exact conservation needs the undamped residual
	for trial := 0; trial < 100; trial++ {
		v := randVector(r, 256, 40)
		merged := mergeWithResidual(v, st)
		st.Encode(v)
		back := sparse.Merge(v, st.Residual())
		if back.NNZ() != merged.NNZ() {
			t.Fatalf("trial %d: reconstruction nnz %d, merged %d", trial, back.NNZ(), merged.NNZ())
		}
		for i := range back.Index {
			if back.Index[i] != merged.Index[i] || math.Abs(back.Value[i]-merged.Value[i]) > 1e-12 {
				t.Fatalf("trial %d: pos %d: got %g want %g", trial, i, back.Value[i], merged.Value[i])
			}
		}
	}
}

// TestTopKResidualDecay pins the damped accumulator: with the default
// decay, the residual after an encode is exactly decay·(merged − encoded)
// — dropped coordinates carry a geometrically damped copy of their mass,
// which bounds the overshoot when they finally win selection (the
// exchanged vector is ADMM state, not a gradient increment).
func TestTopKResidualDecay(t *testing.T) {
	st := NewState(TopK, 0)
	st.KMin, st.KMax, st.K = 2, 2, 2
	v := sparse.FromDense([]float64{5, -4, 3, 2, 1})
	st.Encode(v)
	res := st.Residual()
	if res.NNZ() != 3 {
		t.Fatalf("residual nnz %d, want 3 dropped coordinates", res.NNZ())
	}
	for i, want := range []float64{DefaultDecay * 3, DefaultDecay * 2, DefaultDecay * 1} {
		if res.Index[i] != int32(i+2) || res.Value[i] != want {
			t.Fatalf("residual[%d] = (%d, %g), want (%d, %g)",
				i, res.Index[i], res.Value[i], i+2, want)
		}
	}
	// Second round: the carried mass is merged before selection, then
	// re-damped. Coordinate 2 now holds 3 + decay·3 and must win a slot.
	v2 := sparse.FromDense([]float64{5, -4, 3, 0, 0})
	st.Encode(v2)
	if v2.NNZ() != 2 || v2.Index[0] != 0 || v2.Index[1] != 2 {
		t.Fatalf("boosted coordinate did not win selection: %+v", v2)
	}
	if got, want := v2.Value[1], 3+DefaultDecay*3; got != want {
		t.Fatalf("selected value %g, want merged %g", got, want)
	}
}

// TestTopKNoErrorFeedbackDropsMass is the ablation's mechanism check: with
// the residual disabled, dropped coordinates are gone and the residual
// stays empty.
func TestTopKNoErrorFeedbackDropsMass(t *testing.T) {
	st := NewState(TopK, 0)
	st.DisableErrorFeedback = true
	st.KMin, st.KMax, st.K = 2, 2, 2
	v := sparse.FromDense([]float64{5, -4, 3, 2, 1})
	st.Encode(v)
	if v.NNZ() != 2 || v.Value[0] != 5 || v.Value[1] != -4 {
		t.Fatalf("selection wrong: %+v", v)
	}
	if st.Residual().NNZ() != 0 {
		t.Fatalf("ablation accumulated a residual: %+v", st.Residual())
	}
}

// TestTopKDeterministicTieBreak: equal magnitudes resolve toward lower
// indices, keeping exactly k survivors.
func TestTopKDeterministicTieBreak(t *testing.T) {
	st := NewState(TopK, 0)
	st.KMin, st.KMax, st.K = 3, 3, 3
	v := sparse.FromDense([]float64{1, -1, 1, 1, 1})
	st.Encode(v)
	if v.NNZ() != 3 || v.Index[0] != 0 || v.Index[1] != 1 || v.Index[2] != 2 {
		t.Fatalf("tie-break not index-ascending: %+v", v)
	}
}

// TestStateAdapt pins the k adaptation: multiplicative steering toward the
// byte budget, clamped, deterministic, and inert without a budget.
func TestStateAdapt(t *testing.T) {
	st := NewState(TopK, 1000)
	st.KMin, st.KMax, st.K = 10, 500, 100
	st.Adapt(2000)  // twice over budget: k halves toward 50
	if st.K != 75 { // (100 + 100*1000/2000 + 1) / 2
		t.Fatalf("k after over-budget round: %d", st.K)
	}
	st.K = 100
	st.Adapt(10)     // far under budget: target clamps at KMax
	if st.K != 300 { // (100 + 500 + 1) / 2
		t.Fatalf("k after under-budget round: %d", st.K)
	}
	st.K = 11
	st.Adapt(1 << 40) // absurd observation: clamp at KMin
	if st.K != st.KMin {
		t.Fatalf("k fell through KMin: %d", st.K)
	}
	fixed := NewState(TopK, 0)
	fixed.KMin, fixed.KMax, fixed.K = 10, 500, 100
	fixed.Adapt(99999)
	if fixed.K != 100 {
		t.Fatalf("budget-less state adapted: %d", fixed.K)
	}
}

// TestStateResetClearsResidual: the elastic-rejoin hook empties the
// residual and re-derives k.
func TestStateResetClearsResidual(t *testing.T) {
	st := NewState(TopK, 0)
	st.KMin, st.KMax, st.K = 2, 2, 2
	v := sparse.FromDense([]float64{5, 4, 3, 2, 1})
	st.Encode(v)
	if st.Residual().NNZ() == 0 {
		t.Fatal("setup: nothing dropped")
	}
	st.Reset()
	if st.Residual().NNZ() != 0 || st.K != 0 {
		t.Fatalf("Reset left state behind: residual nnz %d, k %d", st.Residual().NNZ(), st.K)
	}
}

// TestNewStateNonTopK: every non-topk kind yields a nil state, the gate
// callers use to keep stateless codecs on their existing path.
func TestNewStateNonTopK(t *testing.T) {
	for _, k := range []Kind{Sparse, SparseQ8, SparseQ16, Dense, DenseF32} {
		if NewState(k, 0) != nil {
			t.Fatalf("%s: got a topk state", k)
		}
	}
	if NewState(TopK, 0) == nil || NewState(TopKQ8, 0) == nil {
		t.Fatal("topk kinds yielded no state")
	}
}

// TestTopKEncodeAllocFree is the zero-alloc contract for the warmed
// error-feedback encode path: once the State's scratch has grown to the
// working set, per-round encodes never touch the heap.
func TestTopKEncodeAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counting is unreliable under -race")
	}
	for _, kind := range []Kind{TopK, TopKQ8} {
		r := rand.New(rand.NewSource(29))
		st := NewState(kind, 0)
		st.KMin, st.KMax, st.K = 8, 64, 32
		const dim = 1024
		// Pre-generate contributions so the measured loop does no RNG or
		// construction work, and warm every scratch buffer.
		vs := make([]*sparse.Vector, 16)
		for i := range vs {
			vs[i] = randVector(r, dim, 200)
		}
		work := make([]*sparse.Vector, len(vs))
		for i := range work {
			work[i] = sparse.NewVector(dim, 256+64)
		}
		warm := func() {
			for i, v := range vs {
				work[i].ReuseFrom(v)
				st.Encode(work[i])
			}
		}
		// The residual's support keeps widening for a few passes before it
		// saturates (bounded by dim); warm until the scratch stops growing.
		for pass := 0; pass < 8; pass++ {
			warm()
		}
		allocs := testing.AllocsPerRun(10, warm)
		if allocs != 0 {
			t.Fatalf("%s: warmed encode allocates %.1f times per pass", kind, allocs)
		}
	}
}

// TestTopKStatelessCodecDegradesGracefully: the stateless codec face
// applies only value rounding, so a call site without a State behaves
// like the exact/q8 codec instead of corrupting the contribution.
func TestTopKStatelessCodecDegradesGracefully(t *testing.T) {
	c, err := For(TopK)
	if err != nil {
		t.Fatal(err)
	}
	v := sparse.FromDense([]float64{1, 2, 3})
	c.EncodeSparse(v)
	if v.NNZ() != 3 {
		t.Fatalf("stateless topk dropped entries: %+v", v)
	}
	c8, _ := For(TopKQ8)
	v8 := sparse.FromDense([]float64{1, 0.5})
	c8.EncodeSparse(v8)
	if v8.NNZ() != 2 {
		t.Fatalf("stateless topk-q8 dropped entries: %+v", v8)
	}
}
